#include "sim/system_sim.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "common/thread_pool.hpp"
#include "snapshot/snapshot_file.hpp"
#include "common/units.hpp"
#include "noc/traffic.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/edf.hpp"
#include "power/core_power.hpp"
#include "power/router_power.hpp"

namespace parm::sim {

namespace {

// FNV-1a mixing, shared digest primitive of the snapshot layer.
void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
}

void mix_f64(std::uint64_t& h, double v) {
  mix(h, std::bit_cast<std::uint64_t>(v));
}

void mix_str(std::uint64_t& h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  mix(h, s.size());
}

obs::Counter& solves_counter() {
  return obs::Registry::instance().counter("pdn.solves");
}
obs::Counter& candidates_counter() {
  return obs::Registry::instance().counter("mapper.candidates_evaluated");
}
obs::Counter& reroutes_counter() {
  return obs::Registry::instance().counter("noc.panr_reroutes");
}

}  // namespace

SystemSimulator::SystemSimulator(SimConfig cfg,
                                 std::vector<appmodel::AppArrival> arrivals)
    : cfg_(std::move(cfg)),
      platform_(cfg_.platform),
      policy_(core::make_admission_policy(cfg_.framework)),
      queue_(cfg_.queue_max_stalls),
      arrivals_(std::move(arrivals)),
      psn_estimator_(platform_.technology(), cfg_.psn),
      checkpoint_(cfg_.checkpoint),
      rng_(cfg_.seed) {
  PARM_CHECK(std::is_sorted(arrivals_.begin(), arrivals_.end(),
                            [](const auto& a, const auto& b) {
                              return a.arrival_s < b.arrival_s;
                            }),
             "arrivals must be sorted by time");
  PARM_CHECK(std::is_sorted(cfg_.fault_injections.begin(),
                            cfg_.fault_injections.end(),
                            [](const auto& a, const auto& b) {
                              return a.time_s < b.time_s;
                            }),
             "fault injections must be sorted by time");
  cfg_.noc.panr_occupancy_threshold = cfg_.framework.panr_threshold;
  network_ = std::make_unique<noc::Network>(
      platform_.mesh(), cfg_.noc,
      noc::make_routing(cfg_.framework.routing,
                        cfg_.framework.panr_threshold));
  const std::size_t n = static_cast<std::size_t>(platform_.mesh().tile_count());
  router_activity_.assign(n, 0.0);
  tile_psn_peak_.assign(n, 0.0);
  tile_psn_avg_.assign(n, 0.0);
  tile_throttled_.assign(n, false);
  noc_psn_sensor_.assign(n, 0.0);
  outcomes_.resize(arrivals_.size());
}

SystemSimulator::~SystemSimulator() = default;

void SystemSimulator::commit(const core::ServiceQueue::Admitted& adm,
                             double now) {
  const cmp::AppInstanceId inst = next_instance_++;
  PARM_CHECK(platform_.ledger().reserve(inst, adm.decision.estimated_power_w),
             "admission committed without power headroom");
  platform_.occupy(inst, adm.decision.mapping, adm.decision.vdd);

  RunningApp app;
  app.instance = inst;
  app.profile = adm.app.profile;
  app.vdd = adm.decision.vdd;
  app.dop = adm.decision.dop;
  app.outcome_index = adm.app.id;
  const appmodel::DopVariant& variant =
      adm.app.profile->variant(adm.decision.dop);
  // EDF priorities: distribute the application deadline over the APG
  // (paper section 4.2 via [23]).
  const std::vector<double> task_deadlines =
      sched::assign_task_deadlines(variant, now, adm.app.deadline_s);
  app.tasks.reserve(adm.decision.mapping.size());
  for (const auto& p : adm.decision.mapping) {
    RunningTask t;
    t.index = p.task_index;
    t.tile = p.tile;
    t.remaining_cycles =
        variant.tasks[static_cast<std::size_t>(p.task_index)].work_cycles;
    t.activity = p.activity;
    t.phase = rng_.uniform01();
    t.progress_rate_cps = platform_.vf_model().fmax(adm.decision.vdd);
    t.edf_deadline_s =
        task_deadlines[static_cast<std::size_t>(p.task_index)];
    app.tasks.push_back(t);
  }
  running_.push_back(std::move(app));

  AppOutcome& out = outcomes_[static_cast<std::size_t>(adm.app.id)];
  out.admitted = true;
  out.admit_s = now;
  out.vdd = adm.decision.vdd;
  out.dop = adm.decision.dop;

  obs::Tracer::instance().instant(
      "sim", "app.admit",
      {{"app", adm.app.id},
       {"bench", std::string_view(adm.app.bench->name)},
       {"vdd", adm.decision.vdd},
       {"dop", adm.decision.dop},
       {"sim_time_s", now}});
}

void SystemSimulator::admit_pending(double now) {
  const std::size_t dropped_before = queue_.dropped().size();
  while (auto adm = queue_.pump(now, platform_, *policy_)) {
    commit(*adm, now);
  }
  // Mirror newly dropped apps into their outcome records.
  for (std::size_t i = dropped_before; i < queue_.dropped().size(); ++i) {
    const auto& app = queue_.dropped()[i];
    AppOutcome& out = outcomes_[static_cast<std::size_t>(app.id)];
    out.dropped = true;
    obs::Tracer::instance().instant(
        "sim", "app.drop", {{"app", app.id}, {"sim_time_s", now}});
  }
}

std::vector<noc::TrafficFlow> SystemSimulator::build_flows() const {
  std::vector<noc::TrafficFlow> flows;
  for (const RunningApp& app : running_) {
    const appmodel::DopVariant& variant = app.profile->variant(app.dop);
    std::vector<TileId> tile_of(variant.tasks.size(), kInvalidTile);
    std::vector<bool> done(variant.tasks.size(), false);
    std::vector<double> rate_of(variant.tasks.size(), 0.0);
    for (const RunningTask& t : app.tasks) {
      tile_of[static_cast<std::size_t>(t.index)] = t.tile;
      done[static_cast<std::size_t>(t.index)] = t.done();
      rate_of[static_cast<std::size_t>(t.index)] = t.progress_rate_cps;
    }
    for (const auto& e : variant.graph.edges()) {
      if (done[static_cast<std::size_t>(e.src)]) continue;
      const TileId src = tile_of[static_cast<std::size_t>(e.src)];
      const TileId dst = tile_of[static_cast<std::size_t>(e.dst)];
      if (src == dst || src == kInvalidTile || dst == kInvalidTile) continue;
      // The edge's total volume drains over the source task's lifetime:
      // flits/s = volume × (source's achieved progress rate) / source
      // work. Using the achieved rate (not fmax) models the core
      // self-throttling when it stalls on the network — saturation
      // lowers injection, which is what keeps real wormhole NoCs stable.
      const double src_work =
          variant.tasks[static_cast<std::size_t>(e.src)].work_cycles;
      const double rate_fps =
          e.volume_flits * rate_of[static_cast<std::size_t>(e.src)] /
          src_work;
      noc::TrafficFlow flow;
      flow.src = src;
      flow.dst = dst;
      flow.flits_per_cycle = rate_fps / units::kRefClockHz;
      flow.app_id = static_cast<std::int32_t>(app.instance);
      flows.push_back(flow);
    }
  }
  return flows;
}

void SystemSimulator::sample_noc() {
  std::vector<noc::TrafficFlow> flows = build_flows();
  if (flows.empty()) {
    std::fill(router_activity_.begin(), router_activity_.end(), 0.0);
    app_latency_.clear();
    return;
  }
  network_->set_tile_psn(noc_psn_sensor_);
  noc::TrafficGenerator traffic(std::move(flows));
  const noc::WindowResult w =
      noc::run_window(*network_, traffic, cfg_.noc_window);
  router_activity_ = w.router_activity;
  app_latency_ = w.app_latency;
  if (w.avg_latency > 0.0) latency_stats_.add(w.avg_latency);
  epoch_noc_latency_ = w.avg_latency;
  for (RunningApp& app : running_) {
    auto it = app_latency_.find(static_cast<std::int32_t>(app.instance));
    if (it != app_latency_.end()) app.latency_cycles = it->second;
  }
}

void SystemSimulator::sample_psn() {
  const power::CorePowerModel core_model(platform_.technology());
  const power::RouterPowerModel router_model(platform_.technology());
  const MeshGeometry& mesh = platform_.mesh();
  const bool panr =
      cfg_.framework.routing == "PANR";  // adds router logic power

  // Proactive guard: last epoch's sensor readings decide which tiles run
  // throttled during this epoch (both their current draw and progress).
  if (cfg_.proactive_throttle) {
    const double limit = platform_.config().ve_threshold_percent -
                         cfg_.throttle_guard_percent;
    for (std::size_t t = 0; t < tile_throttled_.size(); ++t) {
      tile_throttled_[t] = tile_psn_peak_[t] > limit;
      if (tile_throttled_[t]) ++total_throttle_epochs_;
    }
  }

  // Phase 1 (serial): per-domain supply and loads from the power models,
  // walked in domain order so the chip-power accumulation is
  // deterministic.
  const std::size_t n_domains =
      static_cast<std::size_t>(mesh.domain_count());
  std::vector<double> domain_vdd(n_domains);
  std::vector<std::array<pdn::TileLoad, 4>> domain_loads(n_domains);
  std::vector<char> domain_active(n_domains, 0);
  double chip_power = 0.0;
  for (DomainId d = 0; d < mesh.domain_count(); ++d) {
    const auto tiles = mesh.domain_tiles(d);
    const double vdd =
        platform_.domain_vdd(d).value_or(cfg_.dark_router_vdd);

    std::array<pdn::TileLoad, 4> loads{};
    bool any_load = false;
    for (std::size_t k = 0; k < 4; ++k) {
      const TileId t = tiles[k];
      const auto& asg = platform_.tile(t);
      double i_avg = 0.0;
      double modulation = 0.0;
      double phase = 0.25;
      if (asg.app != cmp::kNoApp) {
        const double f = platform_.vf_model().fmax(vdd);
        double core_i = core_model.supply_current(vdd, f, asg.activity);
        if (tile_throttled_[static_cast<std::size_t>(t)]) {
          core_i *= cfg_.throttle_factor;
        }
        i_avg += core_i;
        modulation = pdn::activity_to_modulation(asg.activity);
        // Phase of the owning task's ripple.
        for (const RunningApp& app : running_) {
          if (app.instance != asg.app) continue;
          for (const RunningTask& rt : app.tasks) {
            if (rt.tile == t) phase = rt.phase;
          }
        }
      }
      const double flit_rate =
          router_activity_[static_cast<std::size_t>(t)] *
          units::kRefClockHz;
      if (flit_rate > 0.0 || asg.app != cmp::kNoApp) {
        i_avg += router_model.supply_current(vdd, flit_rate, panr);
        if (modulation == 0.0 && flit_rate > 1e6) modulation = 0.2;
      }
      chip_power += i_avg * vdd;
      if (i_avg > 0.0) any_load = true;
      loads[k] = pdn::TileLoad{i_avg, modulation, phase};
    }
    domain_vdd[static_cast<std::size_t>(d)] = vdd;
    domain_loads[static_cast<std::size_t>(d)] = loads;
    domain_active[static_cast<std::size_t>(d)] = any_load ? 1 : 0;
  }

  // Phase 2 (parallel): the per-domain estimates are independent — each
  // writes only its own slot, the memo cache and estimator are
  // thread-safe, and concurrent misses of the same key compute identical
  // values. The serial path runs the same code in the same per-domain
  // arithmetic, so results are bit-identical either way.
  std::vector<pdn::DomainPsn> domain_psn(n_domains);
  const auto evaluate_domain = [&](std::size_t d) {
    if (!domain_active[d]) return;
    const double vdd = domain_vdd[d];
    const std::uint64_t key = pdn::PsnCache::key(vdd, domain_loads[d]);
    pdn::DomainPsn psn;
    if (!psn_cache_.get(key, psn)) {
      // Quantize the loads the same way the key does, so cache hits and
      // misses see identical physics.
      psn = psn_estimator_.estimate(
          vdd, pdn::PsnCache::quantize(domain_loads[d]));
      psn_cache_.put(key, psn);
    }
    domain_psn[d] = psn;
  };
  if (cfg_.parallel_psn) {
    ThreadPool::shared().parallel_for(n_domains, evaluate_domain);
  } else {
    for (std::size_t d = 0; d < n_domains; ++d) evaluate_domain(d);
  }

  // Phase 3 (serial): sensors and statistics reduced in domain order.
  epoch_peak_psn_ = 0.0;
  RunningStats epoch_domain_psn;
  for (DomainId d = 0; d < mesh.domain_count(); ++d) {
    const auto tiles = mesh.domain_tiles(d);
    const pdn::DomainPsn& psn = domain_psn[static_cast<std::size_t>(d)];
    for (std::size_t k = 0; k < 4; ++k) {
      tile_psn_peak_[static_cast<std::size_t>(tiles[k])] =
          psn.tiles[k].peak_percent;
      tile_psn_avg_[static_cast<std::size_t>(tiles[k])] =
          psn.tiles[k].avg_percent;
      noc_psn_sensor_[static_cast<std::size_t>(tiles[k])] =
          psn.peak_percent;
    }
    // Only powered (occupied) domains contribute to the chip PSN figures,
    // matching the paper's "PSN observed" in active regions.
    if (platform_.domain_vdd(d).has_value()) {
      psn_peak_stats_.add(psn.peak_percent);
      psn_avg_stats_.add(psn.avg_percent);
      epoch_peak_psn_ = std::max(epoch_peak_psn_, psn.peak_percent);
      epoch_domain_psn.add(psn.avg_percent);
    }
  }
  platform_.set_tile_psn(tile_psn_peak_);
  chip_power_stats_.add(chip_power);
  epoch_avg_psn_ = epoch_domain_psn.mean();
  epoch_chip_power_ = chip_power;
}

void SystemSimulator::apply_emergencies_and_progress(double now) {
  const double margin = platform_.config().ve_threshold_percent;
  epoch_ves_ = 0;
  // Collect the tiles with a forced (injected) emergency this epoch.
  std::vector<TileId> forced;
  while (next_fault_ < cfg_.fault_injections.size() &&
         cfg_.fault_injections[next_fault_].time_s <
             now + cfg_.epoch_s) {
    if (cfg_.fault_injections[next_fault_].time_s >= now) {
      forced.push_back(cfg_.fault_injections[next_fault_].tile);
    }
    ++next_fault_;
  }
  for (RunningApp& app : running_) {
    const appmodel::BenchmarkProfile& bench = app.profile->benchmark();
    const double f = platform_.vf_model().fmax(app.vdd);
    const double packets_per_work_cycle =
        bench.comm_intensity / 1000.0 /
        static_cast<double>(cfg_.noc.flits_per_packet);
    // Packet latency is measured in NoC cycles (1 GHz). A core running at
    // f waits latency × f/1GHz of *its own* cycles per blocking packet —
    // fast cores burn proportionally more cycles per network round trip.
    const double stall_per_work = cfg_.stall_alpha * app.latency_cycles *
                                  (f / units::kRefClockHz) *
                                  packets_per_work_cycle;
    AppOutcome& out = outcomes_[static_cast<std::size_t>(app.outcome_index)];

    for (RunningTask& task : app.tasks) {
      if (task.done()) continue;
      const std::size_t ti = static_cast<std::size_t>(task.tile);
      const double peak = tile_psn_peak_[ti];
      const double avg = tile_psn_avg_[ti];

      const bool injected =
          std::find(forced.begin(), forced.end(), task.tile) !=
          forced.end();
      task.hot_epochs = peak > margin ? task.hot_epochs + 1 : 0;
      if (injected || peak > margin) {
        const double p =
            injected ? 1.0
                     : std::min(cfg_.ve_probability_cap,
                                cfg_.ve_probability_slope *
                                    (peak - margin));
        if (rng_.bernoulli(p)) {
          // Voltage emergency: roll back to the checkpoint taken at the
          // start of this epoch — the epoch's progress is lost and the
          // restart penalty is added. A restarting core barely injects.
          task.remaining_cycles += checkpoint_.config().rollback_cycles;
          task.progress_rate_cps = 0.05 * f;
          ++out.ve_count;
          ++total_ves_;
          ++epoch_ves_;
          obs::Tracer::instance().instant(
              "sim", "voltage_emergency",
              {{"app", out.id},
               {"tile", static_cast<int>(task.tile)},
               {"psn_percent", peak},
               {"injected", injected ? 1 : 0},
               {"sim_time_s", now}});
          continue;
        }
      }
      double derate = std::max(
          0.2, 1.0 - cfg_.psn_slowdown_per_percent * avg);
      if (tile_throttled_[ti]) derate *= cfg_.throttle_factor;
      const double progress_rate = f * derate / (1.0 + stall_per_work);
      task.progress_rate_cps = progress_rate;
      const double progress =
          progress_rate * cfg_.epoch_s - checkpoint_.config().checkpoint_cycles;
      task.remaining_cycles -= std::max(0.0, progress);
      if (task.done() && task.finish_s < 0.0) {
        task.finish_s = now + cfg_.epoch_s;
      }
    }
  }
}

void SystemSimulator::migrate_hot_tasks() {
  for (RunningApp& app : running_) {
    // At most one migration per app per epoch: move the hottest
    // persistently-stressed task to the coolest free domain.
    RunningTask* worst = nullptr;
    for (RunningTask& task : app.tasks) {
      if (task.done() || task.hot_epochs < cfg_.migration_hot_epochs) {
        continue;
      }
      if (worst == nullptr ||
          tile_psn_peak_[static_cast<std::size_t>(task.tile)] >
              tile_psn_peak_[static_cast<std::size_t>(worst->tile)]) {
        worst = &task;
      }
    }
    if (worst == nullptr) continue;
    const std::vector<DomainId> free = platform_.free_domains();
    if (free.empty()) continue;
    // Closest free domain to the task's current one keeps paths short.
    DomainId best = free.front();
    double best_dist = 1e18;
    const DomainId from_d = platform_.mesh().domain_of(worst->tile);
    for (DomainId d : free) {
      const double dist = platform_.mesh().domain_distance(d, from_d);
      if (dist < best_dist) {
        best_dist = dist;
        best = d;
      }
    }
    const TileId target = platform_.mesh().domain_tiles(best)[0];
    obs::Tracer::instance().instant(
        "sim", "app.migrate",
        {{"app", app.outcome_index},
         {"from_tile", static_cast<int>(worst->tile)},
         {"to_tile", static_cast<int>(target)}});
    platform_.migrate(app.instance, worst->tile, target);
    worst->tile = target;
    worst->remaining_cycles += cfg_.migration_cost_cycles;
    worst->hot_epochs = 0;
    ++total_migrations_;
  }
}

bool SystemSimulator::finish_completed_apps(double now) {
  bool any = false;
  for (auto it = running_.begin(); it != running_.end();) {
    const bool done = std::all_of(it->tasks.begin(), it->tasks.end(),
                                  [](const RunningTask& t) {
                                    return t.done();
                                  });
    if (!done) {
      ++it;
      continue;
    }
    platform_.release(it->instance);
    platform_.ledger().release(it->instance);
    AppOutcome& out = outcomes_[static_cast<std::size_t>(it->outcome_index)];
    out.completed = true;
    out.finish_s = now;
    obs::Tracer::instance().instant(
        "sim", "app.complete",
        {{"app", out.id}, {"ve_count", out.ve_count}, {"sim_time_s", now}});
    out.missed_deadline = now > out.deadline_s;
    for (const RunningTask& task : it->tasks) {
      if (task.finish_s > task.edf_deadline_s) ++out.task_deadline_misses;
    }
    it = running_.erase(it);
    any = true;
  }
  return any;
}

std::uint64_t SystemSimulator::config_fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  mix(h, cfg_.framework.fingerprint());
  mix(h, static_cast<std::uint64_t>(cfg_.platform.mesh_width));
  mix(h, static_cast<std::uint64_t>(cfg_.platform.mesh_height));
  mix(h, static_cast<std::uint64_t>(cfg_.platform.technology_nm));
  mix(h, cfg_.platform.vdd_levels.size());
  for (double v : cfg_.platform.vdd_levels) mix_f64(h, v);
  mix_f64(h, cfg_.platform.dark_silicon_budget_w);
  mix_f64(h, cfg_.platform.ve_threshold_percent);
  mix_f64(h, cfg_.epoch_s);
  mix(h, static_cast<std::uint64_t>(cfg_.noc_every_epochs));
  mix(h, cfg_.noc_window.warmup_cycles);
  mix(h, cfg_.noc_window.measure_cycles);
  mix(h, static_cast<std::uint64_t>(cfg_.noc.buffer_depth));
  mix(h, static_cast<std::uint64_t>(cfg_.noc.flits_per_packet));
  mix_f64(h, cfg_.noc.rate_ewma_alpha);
  mix_f64(h, cfg_.checkpoint.period_s);
  mix_f64(h, cfg_.checkpoint.checkpoint_cycles);
  mix_f64(h, cfg_.checkpoint.rollback_cycles);
  mix(h, static_cast<std::uint64_t>(cfg_.psn.warmup_periods));
  mix(h, static_cast<std::uint64_t>(cfg_.psn.measure_periods));
  mix(h, static_cast<std::uint64_t>(cfg_.psn.steps_per_period));
  // cfg_.parallel_psn deliberately excluded: both paths are bit-identical.
  mix_f64(h, cfg_.max_sim_time_s);
  mix_f64(h, cfg_.ve_probability_slope);
  mix_f64(h, cfg_.ve_probability_cap);
  mix_f64(h, cfg_.psn_slowdown_per_percent);
  mix_f64(h, cfg_.stall_alpha);
  mix_f64(h, cfg_.dark_router_vdd);
  mix(h, static_cast<std::uint64_t>(cfg_.queue_max_stalls));
  mix(h, cfg_.seed);
  mix(h, cfg_.proactive_throttle ? 1u : 0u);
  mix_f64(h, cfg_.throttle_guard_percent);
  mix_f64(h, cfg_.throttle_factor);
  mix(h, cfg_.enable_migration ? 1u : 0u);
  mix(h, static_cast<std::uint64_t>(cfg_.migration_hot_epochs));
  mix_f64(h, cfg_.migration_cost_cycles);
  mix(h, cfg_.record_telemetry ? 1u : 0u);
  mix(h, cfg_.fault_injections.size());
  for (const auto& f : cfg_.fault_injections) {
    mix_f64(h, f.time_s);
    mix(h, static_cast<std::uint64_t>(f.tile));
  }
  mix(h, arrivals_.size());
  for (const auto& a : arrivals_) {
    mix(h, static_cast<std::uint64_t>(a.id));
    mix_str(h, a.bench->name);
    mix(h, a.profile_seed);
    mix_f64(h, a.arrival_s);
    mix_f64(h, a.deadline_s);
  }
  return h;
}

void SystemSimulator::save_state(snapshot::Writer& w) const {
  w.begin_section("SIMS");
  w.u64(config_fingerprint());
  w.f64(t_);
  w.u64(epoch_);
  w.u64(next_arrival_);
  w.i64(next_instance_);
  w.u64(next_fault_);
  w.f64(epoch_peak_psn_);
  w.f64(epoch_avg_psn_);
  w.f64(epoch_chip_power_);
  w.f64(epoch_noc_latency_);
  w.i32(epoch_ves_);
  w.u64(total_ves_);
  w.u64(total_throttle_epochs_);
  w.u64(total_migrations_);
  // Pending per-epoch counter deltas (see the member comment): ticks of
  // the process-wide counters that belong to the *next* telemetry sample.
  w.u64(solves_counter().value() - prev_solves_);
  w.u64(candidates_counter().value() - prev_cands_);
  w.u64(reroutes_counter().value() - prev_reroutes_);

  w.begin_section("RNG0");
  const Rng::State rs = rng_.state();
  for (std::uint64_t word : rs.s) w.u64(word);
  w.b(rs.have_cached_normal);
  w.f64(rs.cached_normal);

  w.begin_section("STAT");
  for (const RunningStats* st :
       {&psn_peak_stats_, &psn_avg_stats_, &latency_stats_,
        &chip_power_stats_}) {
    const RunningStats::State s = st->state();
    w.u64(s.n);
    w.f64(s.min);
    w.f64(s.max);
    w.f64(s.mean);
    w.f64(s.m2);
  }

  platform_.save(w);
  queue_.save(w);
  network_->save(w);
  psn_cache_.save(w);
  telemetry_.save(w);

  w.begin_section("EPCH");
  w.vec_f64(router_activity_);
  w.vec_f64(tile_psn_peak_);
  w.vec_f64(tile_psn_avg_);
  w.vec_bool(tile_throttled_);
  w.vec_f64(noc_psn_sensor_);
  w.u64(app_latency_.size());
  for (const auto& [app, lat] : app_latency_) {  // std::map: sorted
    w.i32(app);
    w.f64(lat);
  }

  w.begin_section("APPS");
  w.u64(running_.size());
  for (const RunningApp& app : running_) {
    w.i64(app.instance);
    w.i32(app.outcome_index);
    w.f64(app.vdd);
    w.i32(app.dop);
    w.f64(app.latency_cycles);
    w.u64(app.tasks.size());
    for (const RunningTask& task : app.tasks) {
      w.i32(task.index);
      w.i32(task.tile);
      w.f64(task.remaining_cycles);
      w.f64(task.activity);
      w.f64(task.phase);
      w.f64(task.progress_rate_cps);
      w.f64(task.edf_deadline_s);
      w.f64(task.finish_s);
      w.i32(task.hot_epochs);
    }
  }

  w.begin_section("OUTC");
  w.u64(outcomes_.size());
  for (const AppOutcome& o : outcomes_) {
    w.b(o.admitted);
    w.b(o.completed);
    w.b(o.dropped);
    w.f64(o.admit_s);
    w.f64(o.finish_s);
    w.b(o.missed_deadline);
    w.i32(o.task_deadline_misses);
    w.f64(o.vdd);
    w.i32(o.dop);
    w.i32(o.ve_count);
  }
}

void SystemSimulator::restore_state(snapshot::Reader& r) {
  r.expect_section("SIMS");
  const std::uint64_t fp = r.u64();
  if (fp != config_fingerprint()) {
    throw snapshot::SnapshotError(
        "snapshot was taken under a different configuration or workload "
        "(fingerprint mismatch) — resume requires the identical SimConfig "
        "and arrival list");
  }
  t_ = r.f64();
  epoch_ = r.u64();
  next_arrival_ = r.u64();
  if (next_arrival_ > arrivals_.size()) {
    throw snapshot::SnapshotError("snapshot arrival cursor out of range");
  }
  next_instance_ = r.i64();
  next_fault_ = r.u64();
  if (next_fault_ > cfg_.fault_injections.size()) {
    throw snapshot::SnapshotError("snapshot fault cursor out of range");
  }
  epoch_peak_psn_ = r.f64();
  epoch_avg_psn_ = r.f64();
  epoch_chip_power_ = r.f64();
  epoch_noc_latency_ = r.f64();
  epoch_ves_ = r.i32();
  total_ves_ = r.u64();
  total_throttle_epochs_ = r.u64();
  total_migrations_ = r.u64();
  pending_solves_ = r.u64();
  pending_cands_ = r.u64();
  pending_reroutes_ = r.u64();

  r.expect_section("RNG0");
  Rng::State rs;
  for (std::uint64_t& word : rs.s) word = r.u64();
  rs.have_cached_normal = r.b();
  rs.cached_normal = r.f64();
  rng_.restore(rs);

  r.expect_section("STAT");
  for (RunningStats* st : {&psn_peak_stats_, &psn_avg_stats_,
                           &latency_stats_, &chip_power_stats_}) {
    RunningStats::State s;
    s.n = r.u64();
    s.min = r.f64();
    s.max = r.f64();
    s.mean = r.f64();
    s.m2 = r.f64();
    st->restore(s);
  }

  // Arrival lookup shared by the queue and the running-app rebuild: the
  // profiles are reconstruction inputs resolved from this simulator's
  // immutable arrival list, never snapshot payload.
  const auto arrival_by_id =
      [this](int id) -> const appmodel::AppArrival& {
    for (const appmodel::AppArrival& a : arrivals_) {
      if (a.id == id) return a;
    }
    throw snapshot::SnapshotError(
        "snapshot references arrival id " + std::to_string(id) +
        " absent from this workload");
  };

  platform_.restore(r);
  queue_.restore(r, arrival_by_id);
  network_->restore(r);
  psn_cache_.restore(r);
  telemetry_.restore(r);

  const std::size_t n_tiles =
      static_cast<std::size_t>(platform_.mesh().tile_count());
  r.expect_section("EPCH");
  router_activity_ = r.vec_f64();
  tile_psn_peak_ = r.vec_f64();
  tile_psn_avg_ = r.vec_f64();
  tile_throttled_ = r.vec_bool();
  noc_psn_sensor_ = r.vec_f64();
  if (router_activity_.size() != n_tiles ||
      tile_psn_peak_.size() != n_tiles || tile_psn_avg_.size() != n_tiles ||
      tile_throttled_.size() != n_tiles ||
      noc_psn_sensor_.size() != n_tiles) {
    throw snapshot::SnapshotError(
        "snapshot per-tile state does not match the platform's tile count");
  }
  app_latency_.clear();
  const std::uint64_t n_lat = r.count(12);
  for (std::uint64_t i = 0; i < n_lat; ++i) {
    const std::int32_t app = r.i32();
    app_latency_[app] = r.f64();
  }

  r.expect_section("APPS");
  running_.clear();
  const std::uint64_t n_apps = r.count(32);
  running_.reserve(n_apps);
  for (std::uint64_t i = 0; i < n_apps; ++i) {
    RunningApp app;
    app.instance = r.i64();
    app.outcome_index = r.i32();
    if (app.outcome_index < 0 ||
        static_cast<std::size_t>(app.outcome_index) >= outcomes_.size()) {
      throw snapshot::SnapshotError(
          "snapshot running app references an out-of-range outcome");
    }
    app.profile = arrival_by_id(app.outcome_index).profile;
    app.vdd = r.f64();
    app.dop = r.i32();
    app.latency_cycles = r.f64();
    const std::uint64_t n_tasks = r.count(48);
    app.tasks.reserve(n_tasks);
    for (std::uint64_t k = 0; k < n_tasks; ++k) {
      RunningTask task;
      task.index = r.i32();
      task.tile = r.i32();
      if (task.tile < 0 ||
          static_cast<std::size_t>(task.tile) >= n_tiles) {
        throw snapshot::SnapshotError(
            "snapshot running task references an out-of-range tile");
      }
      task.remaining_cycles = r.f64();
      task.activity = r.f64();
      task.phase = r.f64();
      task.progress_rate_cps = r.f64();
      task.edf_deadline_s = r.f64();
      task.finish_s = r.f64();
      task.hot_epochs = r.i32();
      app.tasks.push_back(task);
    }
    running_.push_back(std::move(app));
  }

  r.expect_section("OUTC");
  const std::uint64_t n_out = r.count(23);
  if (n_out != outcomes_.size()) {
    throw snapshot::SnapshotError(
        "snapshot outcome count does not match the workload size");
  }
  for (std::size_t i = 0; i < outcomes_.size(); ++i) {
    AppOutcome& o = outcomes_[i];
    o.admitted = r.b();
    o.completed = r.b();
    o.dropped = r.b();
    o.admit_s = r.f64();
    o.finish_s = r.f64();
    o.missed_deadline = r.b();
    o.task_deadline_misses = r.i32();
    o.vdd = r.f64();
    o.dop = r.i32();
    o.ve_count = r.i32();
  }
  // The immutable outcome fields are reconstruction inputs, filled from
  // the arrival list (run() repeats this; doing it here makes the
  // restored state complete on its own).
  for (const appmodel::AppArrival& a : arrivals_) {
    PARM_CHECK(a.id >= 0 &&
                   static_cast<std::size_t>(a.id) < outcomes_.size(),
               "arrival ids must be dense 0..N-1");
    AppOutcome& o = outcomes_[static_cast<std::size_t>(a.id)];
    o.id = a.id;
    o.bench = a.bench->name;
    o.arrival_s = a.arrival_s;
    o.deadline_s = a.deadline_s;
  }
}

void SystemSimulator::enable_periodic_snapshots(std::uint64_t every_epochs,
                                                std::string dir) {
  snapshot_every_ = every_epochs;
  snapshot_dir_ = std::move(dir);
}

void SystemSimulator::save_snapshot(const std::string& path) const {
  snapshot::Writer w;
  save_state(w);
  snapshot::write_file(path, w);
}

void SystemSimulator::restore_snapshot(const std::string& path) {
  snapshot::Reader r = snapshot::read_file(path);
  restore_state(r);
  r.expect_end();
  restored_ = true;
}

SimResult SystemSimulator::run() {
  // Initialize outcome records from the arrival list.
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    const auto& a = arrivals_[i];
    PARM_CHECK(a.id >= 0 &&
                   static_cast<std::size_t>(a.id) < outcomes_.size(),
               "arrival ids must be dense 0..N-1");
    AppOutcome& out = outcomes_[static_cast<std::size_t>(a.id)];
    out.id = a.id;
    out.bench = a.bench->name;
    out.arrival_s = a.arrival_s;
    out.deadline_s = a.deadline_s;
  }

  // Registry handles for the per-epoch activity deltas telemetry snapshots.
  // On a fresh run the pending deltas are zero, so the watermarks start at
  // the live counter values; on a resumed run they re-anchor so the next
  // sample's deltas match the uninterrupted run.
  obs::Counter& pdn_solves_c = solves_counter();
  obs::Counter& mapper_cand_c = candidates_counter();
  obs::Counter& panr_reroutes_c = reroutes_counter();
  prev_solves_ = pdn_solves_c.value() - pending_solves_;
  prev_cands_ = mapper_cand_c.value() - pending_cands_;
  prev_reroutes_ = panr_reroutes_c.value() - pending_reroutes_;
  pending_solves_ = pending_cands_ = pending_reroutes_ = 0;

  SimResult result;
  while (true) {
    obs::ScopedTrace epoch_trace("sim", "sim.epoch");
    while (next_arrival_ < arrivals_.size() &&
           arrivals_[next_arrival_].arrival_s <= t_ + 1e-12) {
      obs::Tracer::instance().instant(
          "sim", "app.arrival",
          {{"app", arrivals_[next_arrival_].id},
           {"bench",
            std::string_view(arrivals_[next_arrival_].bench->name)},
           {"sim_time_s", arrivals_[next_arrival_].arrival_s}});
      queue_.enqueue(arrivals_[next_arrival_]);
      ++next_arrival_;
      admit_pending(t_);
    }
    admit_pending(t_);

    if (epoch_ % static_cast<std::uint64_t>(cfg_.noc_every_epochs) == 0) {
      sample_noc();
    }
    sample_psn();
    apply_emergencies_and_progress(t_);
    if (cfg_.enable_migration) migrate_hot_tasks();

    if (cfg_.record_telemetry) {
      EpochSample sample;
      sample.time_s = t_;
      sample.peak_psn_percent = epoch_peak_psn_;
      sample.avg_psn_percent = epoch_avg_psn_;
      sample.chip_power_w = epoch_chip_power_;
      sample.running_apps = static_cast<std::int32_t>(running_.size());
      sample.queued_apps = static_cast<std::int32_t>(queue_.size());
      sample.busy_tiles = platform_.mesh().tile_count() -
                          platform_.free_tile_count();
      sample.noc_latency_cycles = epoch_noc_latency_;
      sample.ve_count = epoch_ves_;
      sample.pdn_solves =
          static_cast<std::int64_t>(pdn_solves_c.value() - prev_solves_);
      sample.mapper_candidates =
          static_cast<std::int64_t>(mapper_cand_c.value() - prev_cands_);
      sample.panr_reroutes =
          static_cast<std::int64_t>(panr_reroutes_c.value() - prev_reroutes_);
      telemetry_.record(sample);
    }
    prev_solves_ = pdn_solves_c.value();
    prev_cands_ = mapper_cand_c.value();
    prev_reroutes_ = panr_reroutes_c.value();

    t_ += cfg_.epoch_s;
    ++epoch_;
    if (finish_completed_apps(t_)) {
      admit_pending(t_);  // Alg. 1 line 9: retry on app exit
    }

    const bool idle = next_arrival_ == arrivals_.size() &&
                      queue_.empty() && running_.empty();
    if (idle) break;
    if (t_ >= cfg_.max_sim_time_s) {
      result.timed_out = !running_.empty() || !queue_.empty() ||
                         next_arrival_ < arrivals_.size();
      break;
    }

    // Snapshot point: "epoch_ epochs completed" — after the epoch's exits
    // and exit-triggered admissions, before the next epoch begins. A
    // resumed process re-enters the loop top in exactly this state.
    if (snapshot_every_ != 0 && epoch_ % snapshot_every_ == 0) {
      save_snapshot(snapshot_dir_ + "/epoch_" + std::to_string(epoch_) +
                    ".parmsnap");
    }
  }

  result.apps = outcomes_;
  for (const AppOutcome& o : outcomes_) {
    if (o.completed) {
      ++result.completed_count;
      result.makespan_s = std::max(result.makespan_s, o.finish_s);
    }
    if (o.dropped) ++result.dropped_count;
  }
  result.peak_psn_percent = psn_peak_stats_.max();
  result.avg_psn_percent = psn_avg_stats_.mean();
  result.total_ve_count = total_ves_;
  result.avg_noc_latency_cycles = latency_stats_.mean();
  result.peak_chip_power_w = chip_power_stats_.max();
  result.avg_chip_power_w = chip_power_stats_.mean();
  result.throttle_tile_epochs = total_throttle_epochs_;
  result.migration_count = total_migrations_;
  result.total_energy_j = chip_power_stats_.mean() *
                          static_cast<double>(chip_power_stats_.count()) *
                          cfg_.epoch_s;
  result.energy_per_completed_app_j =
      result.completed_count > 0
          ? result.total_energy_j / result.completed_count
          : 0.0;
  result.telemetry = telemetry_;
  return result;
}

}  // namespace parm::sim
