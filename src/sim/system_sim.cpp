#include "sim/system_sim.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "noc/traffic.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/edf.hpp"
#include "power/core_power.hpp"
#include "power/router_power.hpp"

namespace parm::sim {

SystemSimulator::SystemSimulator(SimConfig cfg,
                                 std::vector<appmodel::AppArrival> arrivals)
    : cfg_(std::move(cfg)),
      platform_(cfg_.platform),
      policy_(core::make_admission_policy(cfg_.framework)),
      queue_(cfg_.queue_max_stalls),
      arrivals_(std::move(arrivals)),
      psn_estimator_(platform_.technology(), cfg_.psn),
      checkpoint_(cfg_.checkpoint),
      rng_(cfg_.seed) {
  PARM_CHECK(std::is_sorted(arrivals_.begin(), arrivals_.end(),
                            [](const auto& a, const auto& b) {
                              return a.arrival_s < b.arrival_s;
                            }),
             "arrivals must be sorted by time");
  PARM_CHECK(std::is_sorted(cfg_.fault_injections.begin(),
                            cfg_.fault_injections.end(),
                            [](const auto& a, const auto& b) {
                              return a.time_s < b.time_s;
                            }),
             "fault injections must be sorted by time");
  cfg_.noc.panr_occupancy_threshold = cfg_.framework.panr_threshold;
  network_ = std::make_unique<noc::Network>(
      platform_.mesh(), cfg_.noc,
      noc::make_routing(cfg_.framework.routing,
                        cfg_.framework.panr_threshold));
  const std::size_t n = static_cast<std::size_t>(platform_.mesh().tile_count());
  router_activity_.assign(n, 0.0);
  tile_psn_peak_.assign(n, 0.0);
  tile_psn_avg_.assign(n, 0.0);
  tile_throttled_.assign(n, false);
  noc_psn_sensor_.assign(n, 0.0);
  outcomes_.resize(arrivals_.size());
}

SystemSimulator::~SystemSimulator() = default;

void SystemSimulator::commit(const core::ServiceQueue::Admitted& adm,
                             double now) {
  const cmp::AppInstanceId inst = next_instance_++;
  PARM_CHECK(platform_.ledger().reserve(inst, adm.decision.estimated_power_w),
             "admission committed without power headroom");
  platform_.occupy(inst, adm.decision.mapping, adm.decision.vdd);

  RunningApp app;
  app.instance = inst;
  app.profile = adm.app.profile;
  app.vdd = adm.decision.vdd;
  app.dop = adm.decision.dop;
  app.outcome_index = adm.app.id;
  const appmodel::DopVariant& variant =
      adm.app.profile->variant(adm.decision.dop);
  // EDF priorities: distribute the application deadline over the APG
  // (paper section 4.2 via [23]).
  const std::vector<double> task_deadlines =
      sched::assign_task_deadlines(variant, now, adm.app.deadline_s);
  app.tasks.reserve(adm.decision.mapping.size());
  for (const auto& p : adm.decision.mapping) {
    RunningTask t;
    t.index = p.task_index;
    t.tile = p.tile;
    t.remaining_cycles =
        variant.tasks[static_cast<std::size_t>(p.task_index)].work_cycles;
    t.activity = p.activity;
    t.phase = rng_.uniform01();
    t.progress_rate_cps = platform_.vf_model().fmax(adm.decision.vdd);
    t.edf_deadline_s =
        task_deadlines[static_cast<std::size_t>(p.task_index)];
    app.tasks.push_back(t);
  }
  running_.push_back(std::move(app));

  AppOutcome& out = outcomes_[static_cast<std::size_t>(adm.app.id)];
  out.admitted = true;
  out.admit_s = now;
  out.vdd = adm.decision.vdd;
  out.dop = adm.decision.dop;

  obs::Tracer::instance().instant(
      "sim", "app.admit",
      {{"app", adm.app.id},
       {"bench", std::string_view(adm.app.bench->name)},
       {"vdd", adm.decision.vdd},
       {"dop", adm.decision.dop},
       {"sim_time_s", now}});
}

void SystemSimulator::admit_pending(double now) {
  const std::size_t dropped_before = queue_.dropped().size();
  while (auto adm = queue_.pump(now, platform_, *policy_)) {
    commit(*adm, now);
  }
  // Mirror newly dropped apps into their outcome records.
  for (std::size_t i = dropped_before; i < queue_.dropped().size(); ++i) {
    const auto& app = queue_.dropped()[i];
    AppOutcome& out = outcomes_[static_cast<std::size_t>(app.id)];
    out.dropped = true;
    obs::Tracer::instance().instant(
        "sim", "app.drop", {{"app", app.id}, {"sim_time_s", now}});
  }
}

std::vector<noc::TrafficFlow> SystemSimulator::build_flows() const {
  std::vector<noc::TrafficFlow> flows;
  for (const RunningApp& app : running_) {
    const appmodel::DopVariant& variant = app.profile->variant(app.dop);
    std::vector<TileId> tile_of(variant.tasks.size(), kInvalidTile);
    std::vector<bool> done(variant.tasks.size(), false);
    std::vector<double> rate_of(variant.tasks.size(), 0.0);
    for (const RunningTask& t : app.tasks) {
      tile_of[static_cast<std::size_t>(t.index)] = t.tile;
      done[static_cast<std::size_t>(t.index)] = t.done();
      rate_of[static_cast<std::size_t>(t.index)] = t.progress_rate_cps;
    }
    for (const auto& e : variant.graph.edges()) {
      if (done[static_cast<std::size_t>(e.src)]) continue;
      const TileId src = tile_of[static_cast<std::size_t>(e.src)];
      const TileId dst = tile_of[static_cast<std::size_t>(e.dst)];
      if (src == dst || src == kInvalidTile || dst == kInvalidTile) continue;
      // The edge's total volume drains over the source task's lifetime:
      // flits/s = volume × (source's achieved progress rate) / source
      // work. Using the achieved rate (not fmax) models the core
      // self-throttling when it stalls on the network — saturation
      // lowers injection, which is what keeps real wormhole NoCs stable.
      const double src_work =
          variant.tasks[static_cast<std::size_t>(e.src)].work_cycles;
      const double rate_fps =
          e.volume_flits * rate_of[static_cast<std::size_t>(e.src)] /
          src_work;
      noc::TrafficFlow flow;
      flow.src = src;
      flow.dst = dst;
      flow.flits_per_cycle = rate_fps / units::kRefClockHz;
      flow.app_id = static_cast<std::int32_t>(app.instance);
      flows.push_back(flow);
    }
  }
  return flows;
}

void SystemSimulator::sample_noc() {
  std::vector<noc::TrafficFlow> flows = build_flows();
  if (flows.empty()) {
    std::fill(router_activity_.begin(), router_activity_.end(), 0.0);
    app_latency_.clear();
    return;
  }
  network_->set_tile_psn(noc_psn_sensor_);
  noc::TrafficGenerator traffic(std::move(flows));
  const noc::WindowResult w =
      noc::run_window(*network_, traffic, cfg_.noc_window);
  router_activity_ = w.router_activity;
  app_latency_ = w.app_latency;
  if (w.avg_latency > 0.0) latency_stats_.add(w.avg_latency);
  epoch_noc_latency_ = w.avg_latency;
  for (RunningApp& app : running_) {
    auto it = app_latency_.find(static_cast<std::int32_t>(app.instance));
    if (it != app_latency_.end()) app.latency_cycles = it->second;
  }
}

void SystemSimulator::sample_psn() {
  const power::CorePowerModel core_model(platform_.technology());
  const power::RouterPowerModel router_model(platform_.technology());
  const MeshGeometry& mesh = platform_.mesh();
  const bool panr =
      cfg_.framework.routing == "PANR";  // adds router logic power

  // Proactive guard: last epoch's sensor readings decide which tiles run
  // throttled during this epoch (both their current draw and progress).
  if (cfg_.proactive_throttle) {
    const double limit = platform_.config().ve_threshold_percent -
                         cfg_.throttle_guard_percent;
    for (std::size_t t = 0; t < tile_throttled_.size(); ++t) {
      tile_throttled_[t] = tile_psn_peak_[t] > limit;
      if (tile_throttled_[t]) ++total_throttle_epochs_;
    }
  }

  // Phase 1 (serial): per-domain supply and loads from the power models,
  // walked in domain order so the chip-power accumulation is
  // deterministic.
  const std::size_t n_domains =
      static_cast<std::size_t>(mesh.domain_count());
  std::vector<double> domain_vdd(n_domains);
  std::vector<std::array<pdn::TileLoad, 4>> domain_loads(n_domains);
  std::vector<char> domain_active(n_domains, 0);
  double chip_power = 0.0;
  for (DomainId d = 0; d < mesh.domain_count(); ++d) {
    const auto tiles = mesh.domain_tiles(d);
    const double vdd =
        platform_.domain_vdd(d).value_or(cfg_.dark_router_vdd);

    std::array<pdn::TileLoad, 4> loads{};
    bool any_load = false;
    for (std::size_t k = 0; k < 4; ++k) {
      const TileId t = tiles[k];
      const auto& asg = platform_.tile(t);
      double i_avg = 0.0;
      double modulation = 0.0;
      double phase = 0.25;
      if (asg.app != cmp::kNoApp) {
        const double f = platform_.vf_model().fmax(vdd);
        double core_i = core_model.supply_current(vdd, f, asg.activity);
        if (tile_throttled_[static_cast<std::size_t>(t)]) {
          core_i *= cfg_.throttle_factor;
        }
        i_avg += core_i;
        modulation = pdn::activity_to_modulation(asg.activity);
        // Phase of the owning task's ripple.
        for (const RunningApp& app : running_) {
          if (app.instance != asg.app) continue;
          for (const RunningTask& rt : app.tasks) {
            if (rt.tile == t) phase = rt.phase;
          }
        }
      }
      const double flit_rate =
          router_activity_[static_cast<std::size_t>(t)] *
          units::kRefClockHz;
      if (flit_rate > 0.0 || asg.app != cmp::kNoApp) {
        i_avg += router_model.supply_current(vdd, flit_rate, panr);
        if (modulation == 0.0 && flit_rate > 1e6) modulation = 0.2;
      }
      chip_power += i_avg * vdd;
      if (i_avg > 0.0) any_load = true;
      loads[k] = pdn::TileLoad{i_avg, modulation, phase};
    }
    domain_vdd[static_cast<std::size_t>(d)] = vdd;
    domain_loads[static_cast<std::size_t>(d)] = loads;
    domain_active[static_cast<std::size_t>(d)] = any_load ? 1 : 0;
  }

  // Phase 2 (parallel): the per-domain estimates are independent — each
  // writes only its own slot, the memo cache and estimator are
  // thread-safe, and concurrent misses of the same key compute identical
  // values. The serial path runs the same code in the same per-domain
  // arithmetic, so results are bit-identical either way.
  std::vector<pdn::DomainPsn> domain_psn(n_domains);
  const auto evaluate_domain = [&](std::size_t d) {
    if (!domain_active[d]) return;
    const double vdd = domain_vdd[d];
    const std::uint64_t key = pdn::PsnCache::key(vdd, domain_loads[d]);
    pdn::DomainPsn psn;
    if (!psn_cache_.get(key, psn)) {
      // Quantize the loads the same way the key does, so cache hits and
      // misses see identical physics.
      psn = psn_estimator_.estimate(
          vdd, pdn::PsnCache::quantize(domain_loads[d]));
      psn_cache_.put(key, psn);
    }
    domain_psn[d] = psn;
  };
  if (cfg_.parallel_psn) {
    ThreadPool::shared().parallel_for(n_domains, evaluate_domain);
  } else {
    for (std::size_t d = 0; d < n_domains; ++d) evaluate_domain(d);
  }

  // Phase 3 (serial): sensors and statistics reduced in domain order.
  epoch_peak_psn_ = 0.0;
  RunningStats epoch_domain_psn;
  for (DomainId d = 0; d < mesh.domain_count(); ++d) {
    const auto tiles = mesh.domain_tiles(d);
    const pdn::DomainPsn& psn = domain_psn[static_cast<std::size_t>(d)];
    for (std::size_t k = 0; k < 4; ++k) {
      tile_psn_peak_[static_cast<std::size_t>(tiles[k])] =
          psn.tiles[k].peak_percent;
      tile_psn_avg_[static_cast<std::size_t>(tiles[k])] =
          psn.tiles[k].avg_percent;
      noc_psn_sensor_[static_cast<std::size_t>(tiles[k])] =
          psn.peak_percent;
    }
    // Only powered (occupied) domains contribute to the chip PSN figures,
    // matching the paper's "PSN observed" in active regions.
    if (platform_.domain_vdd(d).has_value()) {
      psn_peak_stats_.add(psn.peak_percent);
      psn_avg_stats_.add(psn.avg_percent);
      epoch_peak_psn_ = std::max(epoch_peak_psn_, psn.peak_percent);
      epoch_domain_psn.add(psn.avg_percent);
    }
  }
  platform_.set_tile_psn(tile_psn_peak_);
  chip_power_stats_.add(chip_power);
  epoch_avg_psn_ = epoch_domain_psn.mean();
  epoch_chip_power_ = chip_power;
}

void SystemSimulator::apply_emergencies_and_progress(double now) {
  const double margin = platform_.config().ve_threshold_percent;
  epoch_ves_ = 0;
  // Collect the tiles with a forced (injected) emergency this epoch.
  std::vector<TileId> forced;
  while (next_fault_ < cfg_.fault_injections.size() &&
         cfg_.fault_injections[next_fault_].time_s <
             now + cfg_.epoch_s) {
    if (cfg_.fault_injections[next_fault_].time_s >= now) {
      forced.push_back(cfg_.fault_injections[next_fault_].tile);
    }
    ++next_fault_;
  }
  for (RunningApp& app : running_) {
    const appmodel::BenchmarkProfile& bench = app.profile->benchmark();
    const double f = platform_.vf_model().fmax(app.vdd);
    const double packets_per_work_cycle =
        bench.comm_intensity / 1000.0 /
        static_cast<double>(cfg_.noc.flits_per_packet);
    // Packet latency is measured in NoC cycles (1 GHz). A core running at
    // f waits latency × f/1GHz of *its own* cycles per blocking packet —
    // fast cores burn proportionally more cycles per network round trip.
    const double stall_per_work = cfg_.stall_alpha * app.latency_cycles *
                                  (f / units::kRefClockHz) *
                                  packets_per_work_cycle;
    AppOutcome& out = outcomes_[static_cast<std::size_t>(app.outcome_index)];

    for (RunningTask& task : app.tasks) {
      if (task.done()) continue;
      const std::size_t ti = static_cast<std::size_t>(task.tile);
      const double peak = tile_psn_peak_[ti];
      const double avg = tile_psn_avg_[ti];

      const bool injected =
          std::find(forced.begin(), forced.end(), task.tile) !=
          forced.end();
      task.hot_epochs = peak > margin ? task.hot_epochs + 1 : 0;
      if (injected || peak > margin) {
        const double p =
            injected ? 1.0
                     : std::min(cfg_.ve_probability_cap,
                                cfg_.ve_probability_slope *
                                    (peak - margin));
        if (rng_.bernoulli(p)) {
          // Voltage emergency: roll back to the checkpoint taken at the
          // start of this epoch — the epoch's progress is lost and the
          // restart penalty is added. A restarting core barely injects.
          task.remaining_cycles += checkpoint_.config().rollback_cycles;
          task.progress_rate_cps = 0.05 * f;
          ++out.ve_count;
          ++total_ves_;
          ++epoch_ves_;
          obs::Tracer::instance().instant(
              "sim", "voltage_emergency",
              {{"app", out.id},
               {"tile", static_cast<int>(task.tile)},
               {"psn_percent", peak},
               {"injected", injected ? 1 : 0},
               {"sim_time_s", now}});
          continue;
        }
      }
      double derate = std::max(
          0.2, 1.0 - cfg_.psn_slowdown_per_percent * avg);
      if (tile_throttled_[ti]) derate *= cfg_.throttle_factor;
      const double progress_rate = f * derate / (1.0 + stall_per_work);
      task.progress_rate_cps = progress_rate;
      const double progress =
          progress_rate * cfg_.epoch_s - checkpoint_.config().checkpoint_cycles;
      task.remaining_cycles -= std::max(0.0, progress);
      if (task.done() && task.finish_s < 0.0) {
        task.finish_s = now + cfg_.epoch_s;
      }
    }
  }
}

void SystemSimulator::migrate_hot_tasks() {
  for (RunningApp& app : running_) {
    // At most one migration per app per epoch: move the hottest
    // persistently-stressed task to the coolest free domain.
    RunningTask* worst = nullptr;
    for (RunningTask& task : app.tasks) {
      if (task.done() || task.hot_epochs < cfg_.migration_hot_epochs) {
        continue;
      }
      if (worst == nullptr ||
          tile_psn_peak_[static_cast<std::size_t>(task.tile)] >
              tile_psn_peak_[static_cast<std::size_t>(worst->tile)]) {
        worst = &task;
      }
    }
    if (worst == nullptr) continue;
    const std::vector<DomainId> free = platform_.free_domains();
    if (free.empty()) continue;
    // Closest free domain to the task's current one keeps paths short.
    DomainId best = free.front();
    double best_dist = 1e18;
    const DomainId from_d = platform_.mesh().domain_of(worst->tile);
    for (DomainId d : free) {
      const double dist = platform_.mesh().domain_distance(d, from_d);
      if (dist < best_dist) {
        best_dist = dist;
        best = d;
      }
    }
    const TileId target = platform_.mesh().domain_tiles(best)[0];
    obs::Tracer::instance().instant(
        "sim", "app.migrate",
        {{"app", app.outcome_index},
         {"from_tile", static_cast<int>(worst->tile)},
         {"to_tile", static_cast<int>(target)}});
    platform_.migrate(app.instance, worst->tile, target);
    worst->tile = target;
    worst->remaining_cycles += cfg_.migration_cost_cycles;
    worst->hot_epochs = 0;
    ++total_migrations_;
  }
}

bool SystemSimulator::finish_completed_apps(double now) {
  bool any = false;
  for (auto it = running_.begin(); it != running_.end();) {
    const bool done = std::all_of(it->tasks.begin(), it->tasks.end(),
                                  [](const RunningTask& t) {
                                    return t.done();
                                  });
    if (!done) {
      ++it;
      continue;
    }
    platform_.release(it->instance);
    platform_.ledger().release(it->instance);
    AppOutcome& out = outcomes_[static_cast<std::size_t>(it->outcome_index)];
    out.completed = true;
    out.finish_s = now;
    obs::Tracer::instance().instant(
        "sim", "app.complete",
        {{"app", out.id}, {"ve_count", out.ve_count}, {"sim_time_s", now}});
    out.missed_deadline = now > out.deadline_s;
    for (const RunningTask& task : it->tasks) {
      if (task.finish_s > task.edf_deadline_s) ++out.task_deadline_misses;
    }
    it = running_.erase(it);
    any = true;
  }
  return any;
}

SimResult SystemSimulator::run() {
  // Initialize outcome records from the arrival list.
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    const auto& a = arrivals_[i];
    PARM_CHECK(a.id >= 0 &&
                   static_cast<std::size_t>(a.id) < outcomes_.size(),
               "arrival ids must be dense 0..N-1");
    AppOutcome& out = outcomes_[static_cast<std::size_t>(a.id)];
    out.id = a.id;
    out.bench = a.bench->name;
    out.arrival_s = a.arrival_s;
    out.deadline_s = a.deadline_s;
  }

  // Registry handles for the per-epoch activity deltas telemetry snapshots.
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& pdn_solves_c = reg.counter("pdn.solves");
  obs::Counter& mapper_cand_c = reg.counter("mapper.candidates_evaluated");
  obs::Counter& panr_reroutes_c = reg.counter("noc.panr_reroutes");
  std::uint64_t prev_solves = pdn_solves_c.value();
  std::uint64_t prev_cands = mapper_cand_c.value();
  std::uint64_t prev_reroutes = panr_reroutes_c.value();

  double t = 0.0;
  std::uint64_t epoch = 0;
  SimResult result;
  while (true) {
    obs::ScopedTrace epoch_trace("sim", "sim.epoch");
    while (next_arrival_ < arrivals_.size() &&
           arrivals_[next_arrival_].arrival_s <= t + 1e-12) {
      obs::Tracer::instance().instant(
          "sim", "app.arrival",
          {{"app", arrivals_[next_arrival_].id},
           {"bench",
            std::string_view(arrivals_[next_arrival_].bench->name)},
           {"sim_time_s", arrivals_[next_arrival_].arrival_s}});
      queue_.enqueue(arrivals_[next_arrival_]);
      ++next_arrival_;
      admit_pending(t);
    }
    admit_pending(t);

    if (epoch % static_cast<std::uint64_t>(cfg_.noc_every_epochs) == 0) {
      sample_noc();
    }
    sample_psn();
    apply_emergencies_and_progress(t);
    if (cfg_.enable_migration) migrate_hot_tasks();

    if (cfg_.record_telemetry) {
      EpochSample sample;
      sample.time_s = t;
      sample.peak_psn_percent = epoch_peak_psn_;
      sample.avg_psn_percent = epoch_avg_psn_;
      sample.chip_power_w = epoch_chip_power_;
      sample.running_apps = static_cast<std::int32_t>(running_.size());
      sample.queued_apps = static_cast<std::int32_t>(queue_.size());
      sample.busy_tiles = platform_.mesh().tile_count() -
                          platform_.free_tile_count();
      sample.noc_latency_cycles = epoch_noc_latency_;
      sample.ve_count = epoch_ves_;
      sample.pdn_solves =
          static_cast<std::int64_t>(pdn_solves_c.value() - prev_solves);
      sample.mapper_candidates =
          static_cast<std::int64_t>(mapper_cand_c.value() - prev_cands);
      sample.panr_reroutes =
          static_cast<std::int64_t>(panr_reroutes_c.value() - prev_reroutes);
      telemetry_.record(sample);
    }
    prev_solves = pdn_solves_c.value();
    prev_cands = mapper_cand_c.value();
    prev_reroutes = panr_reroutes_c.value();

    t += cfg_.epoch_s;
    ++epoch;
    if (finish_completed_apps(t)) {
      admit_pending(t);  // Alg. 1 line 9: retry on app exit
    }

    const bool idle = next_arrival_ == arrivals_.size() &&
                      queue_.empty() && running_.empty();
    if (idle) break;
    if (t >= cfg_.max_sim_time_s) {
      result.timed_out = !running_.empty() || !queue_.empty() ||
                         next_arrival_ < arrivals_.size();
      break;
    }
  }

  result.apps = outcomes_;
  for (const AppOutcome& o : outcomes_) {
    if (o.completed) {
      ++result.completed_count;
      result.makespan_s = std::max(result.makespan_s, o.finish_s);
    }
    if (o.dropped) ++result.dropped_count;
  }
  result.peak_psn_percent = psn_peak_stats_.max();
  result.avg_psn_percent = psn_avg_stats_.mean();
  result.total_ve_count = total_ves_;
  result.avg_noc_latency_cycles = latency_stats_.mean();
  result.peak_chip_power_w = chip_power_stats_.max();
  result.avg_chip_power_w = chip_power_stats_.mean();
  result.throttle_tile_epochs = total_throttle_epochs_;
  result.migration_count = total_migrations_;
  result.total_energy_j = chip_power_stats_.mean() *
                          static_cast<double>(chip_power_stats_.count()) *
                          cfg_.epoch_s;
  result.energy_per_completed_app_j =
      result.completed_count > 0
          ? result.total_energy_j / result.completed_count
          : 0.0;
  result.telemetry = telemetry_;
  return result;
}

}  // namespace parm::sim
