// Epoch-driven full-system simulator: the engine of the phase pipeline.
//
// Advances the CMP in checkpoint-period epochs (1 ms). Each epoch the
// engine drives one EpochContext through six phase components (see
// sim/phases.hpp):
//   1. AdmissionPhase — arrivals enter the FCFS service queue; the
//      framework's admission policy (Algorithm 1 + mapper) commits
//      Vdd/DoP/mapping decisions;
//   2. NocSamplingPhase — APG edge volumes and task progress define NoC
//      injection rates; a short cycle-accurate NoC window measures
//      per-router activity and per-app packet latency under the
//      framework's routing scheme;
//   3. PsnSamplingPhase — core + router currents feed the per-domain PDN
//      transient solver; the resulting per-tile PSN updates the on-die
//      sensors (which PANR reads next epoch — the paper's feedback loop);
//   4. EmergencyAndProgressPhase — tiles whose domain peak PSN exceeds
//      the 5 % margin risk a voltage emergency (checkpoint rollback +
//      restart penalty); tasks progress at fmax(Vdd), derated by
//      PSN-induced slowdown and communication stalls;
//   5. MigrationPhase — optional hot-task migration;
//   6. TelemetryPhase — per-epoch sample and counter watermarks; then
//      completed apps free their tiles/power and trigger queued
//      admissions (Alg. 1 line 9's "app exit event").
//
// Every simulator owns an obs::Registry instance (metrics()); its phases
// and their components resolve all metric handles from it, so concurrent
// simulators (fleet chips) never interleave metrics.
//
// The simulator reports everything Figs. 6-8 plot: makespan, peak/average
// PSN, completed/dropped app counts, VE totals, and per-app outcomes.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "appmodel/workload.hpp"
#include "cmp/platform.hpp"
#include "common/rng.hpp"
#include "fault/fault_phase.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/slo.hpp"
#include "sim/epoch_context.hpp"
#include "sim/phases.hpp"
#include "sim/sim_config.hpp"
#include "snapshot/serializer.hpp"

namespace parm::sim {

class SystemSimulator {
 public:
  SystemSimulator(SimConfig cfg, std::vector<appmodel::AppArrival> arrivals);
  ~SystemSimulator();

  /// Runs the whole experiment and returns the aggregated result. After a
  /// restore_snapshot() the run resumes from the snapshotted epoch and
  /// produces exactly the telemetry and result of the uninterrupted run.
  SimResult run();

  /// The platform (sensors, occupancy) — exposed for tests and examples.
  const cmp::Platform& platform() const { return platform_; }

  /// This simulator's metrics registry. Every component under the engine
  /// (mapper, queue, network, PDN solver/caches) resolves its handles
  /// here, so the values describe exactly this simulator's activity.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

  /// This simulator's flight recorder (empty and disabled unless
  /// SimConfig::record_events). Dump or collect at any time; the fleet
  /// driver collects each chip's recorder after its run.
  obs::FlightRecorder& recorder() { return recorder_; }
  const obs::FlightRecorder& recorder() const { return recorder_; }

  /// This simulator's time-series store (empty and disabled unless
  /// SimConfig::record_timeseries). Unlike the recorder its contents are
  /// part of the snapshot, so a resumed run keeps its droop history.
  obs::TimeSeriesStore& timeseries() { return timeseries_; }
  const obs::TimeSeriesStore& timeseries() const { return timeseries_; }

  /// This simulator's per-phase self-profiler (inert unless
  /// SimConfig::profile_phases; its histograms live in metrics()).
  const obs::PhaseProfiler& profiler() const { return profiler_; }

  /// This simulator's rolling SLO engine (inert unless
  /// SimConfig::track_slo). Not thread-safe — scrape under obs_mutex().
  const obs::SloEngine& slo() const { return slo_; }

  /// Scrape barrier for live observers: run() holds this mutex for the
  /// duration of every epoch body, so an observer thread (the obs HTTP
  /// server's handlers) that locks it reads the non-thread-safe obs
  /// structures (timeseries(), slo(), the config) only on epoch
  /// boundaries. Pure synchronization — locking it cannot perturb the
  /// simulation (pinned by tests/obs_server_test.cpp).
  std::mutex& obs_mutex() const { return obs_mu_; }

  // --- Snapshot / resume ---
  /// During run(), write `dir`/epoch_<N>.parmsnap after every
  /// `every_epochs`-th completed epoch (crash-safe atomic replace; `dir`
  /// must already exist). 0 disables.
  void enable_periodic_snapshots(std::uint64_t every_epochs,
                                 std::string dir);

  /// Serializes the full mutable simulator state to `path`. Derived state
  /// (LU factorizations, traffic generators, solver scratch) is excluded
  /// and rebuilt lazily after restore. Throws snapshot::SnapshotError on
  /// I/O failure. Requires route tracing to be off.
  void save_snapshot(const std::string& path) const;

  /// Restores state saved by save_snapshot() into this simulator, which
  /// must have been constructed with the identical SimConfig and arrival
  /// list (enforced via an embedded fingerprint; parallel_psn may differ —
  /// the two paths are bit-identical). Call before run(). Throws
  /// snapshot::SnapshotError on any mismatch or corruption, leaving no
  /// silently half-restored state behind (the simulator must be discarded
  /// after a failed restore).
  void restore_snapshot(const std::string& path);

  /// Completed control epochs so far (advances during run()).
  std::uint64_t epoch() const { return ctx_.epoch; }

  /// FNV-1a over every determinism-relevant SimConfig field (topology
  /// included) and the arrival list (excluding parallel_psn, whose two
  /// paths are bit-identical) — embedded in snapshots to reject
  /// mismatched resumes.
  std::uint64_t config_fingerprint() const;

 private:
  /// The engine serializes its own sections (clock, RNG, the context's
  /// cross-phase state) and delegates each phase's section to the phase.
  void save_state(snapshot::Writer& w) const;
  void restore_state(snapshot::Reader& r);

  SimConfig cfg_;
  /// Declared before the phases: their constructors resolve metric
  /// handles out of this registry.
  obs::Registry metrics_;
  /// Declared after the registry (its self-metrics live there). Recorder
  /// contents are not snapshotted: events are observational exhaust, so
  /// a resumed run starts with an empty recorder by design.
  obs::FlightRecorder recorder_;
  /// Waveform store (obs/timeseries.hpp). Declared after the registry
  /// for the same self-metrics reason as the recorder; snapshotted,
  /// unlike the recorder (section "TSDB" at the end of save_state).
  obs::TimeSeriesStore timeseries_;
  /// Per-phase wall-clock self-profiler; histograms live in metrics_,
  /// hence declared after it. Inert unless cfg_.profile_phases.
  obs::PhaseProfiler profiler_;
  /// Rolling SLO engine, fed once per epoch from metrics_ (and per
  /// admission through ctx_.slo). Inert unless cfg_.track_slo; like the
  /// recorder its state is not snapshotted.
  obs::SloEngine slo_;
  cmp::Platform platform_;
  std::vector<appmodel::AppArrival> arrivals_;
  Rng rng_;

  EpochContext ctx_;
  AdmissionPhase admission_;
  NocSamplingPhase noc_;
  PsnSamplingPhase psn_;
  EmergencyAndProgressPhase emergency_;
  MigrationPhase migration_;
  TelemetryPhase telemetry_;
  /// Fault injection (SimConfig::faults): topology transitions fire at
  /// the loop top, sensor perturbation right after PSN sampling. Inert
  /// (and bit-identical to its absence) when faults are disabled.
  fault::FaultPhase fault_;

  // Periodic-snapshot configuration (off unless enabled).
  std::uint64_t snapshot_every_ = 0;
  std::string snapshot_dir_;
  /// First-VE event dump latch (SimConfig::events_dump_on_ve).
  bool ve_dump_done_ = false;
  /// See obs_mutex().
  mutable std::mutex obs_mu_;
};

}  // namespace parm::sim
