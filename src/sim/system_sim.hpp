// Epoch-driven full-system simulator.
//
// Advances the CMP in checkpoint-period epochs (1 ms). Each epoch:
//   1. arrivals enter the FCFS service queue; the framework's admission
//      policy (Algorithm 1 + mapper) commits Vdd/DoP/mapping decisions;
//   2. APG edge volumes and task progress define NoC injection rates; a
//      short cycle-accurate NoC window measures per-router activity and
//      per-app packet latency under the framework's routing scheme;
//   3. core + router currents feed the per-domain PDN transient solver;
//      the resulting per-tile PSN updates the on-die sensors (which PANR
//      reads next epoch — the paper's feedback loop);
//   4. tiles whose domain peak PSN exceeds the 5 % margin risk a voltage
//      emergency: the task rolls back to its last checkpoint (lost epoch
//      progress + 10 000-cycle restart);
//   5. tasks progress at fmax(Vdd), derated by PSN-induced critical-path
//      slowdown and by communication stalls proportional to measured
//      packet latency; completed apps free their tiles/power and trigger
//      queued admissions (Alg. 1 line 9's "app exit event").
//
// The simulator reports everything Figs. 6-8 plot: makespan, peak/average
// PSN, completed/dropped app counts, VE totals, and per-app outcomes.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "appmodel/workload.hpp"
#include "cmp/platform.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/framework.hpp"
#include "core/service_queue.hpp"
#include "noc/window_sim.hpp"
#include "pdn/psn_cache.hpp"
#include "pdn/psn_estimator.hpp"
#include "sched/checkpoint.hpp"
#include "sched/edf.hpp"
#include "sim/telemetry.hpp"
#include "snapshot/serializer.hpp"

namespace parm::sim {

struct SimConfig {
  cmp::PlatformConfig platform;
  core::FrameworkConfig framework;

  double epoch_s = 1e-3;  ///< Control epoch == checkpoint period (1 ms).
  /// NoC is re-simulated every `noc_every_epochs` epochs (activity and
  /// latency are reused in between); each window runs warmup + measure
  /// cycles at the 1 GHz NoC clock.
  int noc_every_epochs = 2;
  noc::WindowConfig noc_window{64, 256};
  noc::NocConfig noc;
  sched::CheckpointConfig checkpoint;
  pdn::PsnEstimatorConfig psn;
  /// Evaluate the independent per-domain PSN estimates on the shared
  /// thread pool. Results are bit-identical to the serial path (per-domain
  /// slots, serial reduction); disable to pin the whole epoch to one
  /// thread.
  bool parallel_psn = true;

  double max_sim_time_s = 30.0;

  /// VE probability per task-epoch: slope × (domain peak PSN % − margin),
  /// capped. The margin is platform.ve_threshold_percent (5 %).
  double ve_probability_slope = 0.32;
  double ve_probability_cap = 0.88;
  /// Critical-path slowdown per percent of average PSN (guardband loss).
  double psn_slowdown_per_percent = 0.01;
  /// Fraction of measured packet latency visible as a compute stall.
  double stall_alpha = 0.35;
  /// Supply of the always-on router rail in otherwise dark domains.
  double dark_router_vdd = 0.4;

  int queue_max_stalls = 8;
  std::uint64_t seed = 42;

  /// Sensor-guided proactive throttling (extension; cf. the paper's
  /// related work on pipeline throttling [9] and reactive schemes [16]):
  /// when a tile's sensor reads within `throttle_guard_percent` of the VE
  /// margin, its core is throttled to `throttle_factor` of full speed for
  /// the next epoch — trading throughput for supply current before an
  /// emergency strikes. Off by default (the paper's PARM avoids the need
  /// for it; bench/ablation_throttle quantifies that claim).
  bool proactive_throttle = false;
  double throttle_guard_percent = 1.0;
  double throttle_factor = 0.6;

  /// Thread migration (extension; cf. [19]): a task whose tile sensor
  /// stays above the VE margin for `migration_hot_epochs` consecutive
  /// epochs is moved to the coolest free domain (same Vdd), paying
  /// `migration_cost_cycles` of state-transfer work. Off by default.
  bool enable_migration = false;
  int migration_hot_epochs = 3;
  double migration_cost_cycles = 50000.0;

  /// Record one EpochSample per epoch into SimResult::telemetry.
  bool record_telemetry = false;

  /// Forced voltage emergencies for failure-injection testing: the task
  /// running on `tile` during the epoch containing `time_s` rolls back
  /// regardless of the measured PSN. Entries must be sorted by time.
  struct FaultInjection {
    double time_s = 0.0;
    TileId tile = kInvalidTile;
  };
  std::vector<FaultInjection> fault_injections;
};

/// Per-application outcome record.
struct AppOutcome {
  int id = -1;
  std::string bench;
  double arrival_s = 0.0;
  double deadline_s = 0.0;
  bool admitted = false;
  bool completed = false;
  bool dropped = false;
  double admit_s = 0.0;
  double finish_s = 0.0;
  bool missed_deadline = false;
  /// Tasks that finished after their EDF-assigned intermediate deadline
  /// (paper section 4.2: per-task deadlines derived from the application
  /// deadline via the task-graph technique of [23]).
  int task_deadline_misses = 0;
  double vdd = 0.0;
  int dop = 0;
  int ve_count = 0;
};

struct SimResult {
  std::vector<AppOutcome> apps;
  double makespan_s = 0.0;  ///< Last completion time ("total time to
                            ///< execute the sequence", Fig. 6).
  double peak_psn_percent = 0.0;   ///< Fig. 7 (peak bars)
  double avg_psn_percent = 0.0;    ///< Fig. 7 (average bars)
  int completed_count = 0;         ///< Fig. 8
  int dropped_count = 0;
  std::uint64_t total_ve_count = 0;
  /// Tile-epochs spent throttled by the proactive guard (0 unless
  /// SimConfig::proactive_throttle).
  std::uint64_t throttle_tile_epochs = 0;
  /// Task migrations performed (0 unless SimConfig::enable_migration).
  std::uint64_t migration_count = 0;
  double avg_noc_latency_cycles = 0.0;
  double peak_chip_power_w = 0.0;
  double avg_chip_power_w = 0.0;
  /// Total chip energy over the run (J) and its ratio per completed app
  /// — the dark-silicon efficiency view (NTC operation wins big here).
  double total_energy_j = 0.0;
  double energy_per_completed_app_j = 0.0;
  bool timed_out = false;  ///< hit max_sim_time_s with work remaining
  TelemetryRecorder telemetry;  ///< filled when record_telemetry is set
};

class SystemSimulator {
 public:
  SystemSimulator(SimConfig cfg, std::vector<appmodel::AppArrival> arrivals);
  ~SystemSimulator();

  /// Runs the whole experiment and returns the aggregated result. After a
  /// restore_snapshot() the run resumes from the snapshotted epoch and
  /// produces exactly the telemetry and result of the uninterrupted run.
  SimResult run();

  /// The platform (sensors, occupancy) — exposed for tests and examples.
  const cmp::Platform& platform() const { return platform_; }

  // --- Snapshot / resume ---
  /// During run(), write `dir`/epoch_<N>.parmsnap after every
  /// `every_epochs`-th completed epoch (crash-safe atomic replace; `dir`
  /// must already exist). 0 disables.
  void enable_periodic_snapshots(std::uint64_t every_epochs,
                                 std::string dir);

  /// Serializes the full mutable simulator state to `path`. Derived state
  /// (LU factorizations, traffic generators, solver scratch) is excluded
  /// and rebuilt lazily after restore. Throws snapshot::SnapshotError on
  /// I/O failure. Requires route tracing to be off.
  void save_snapshot(const std::string& path) const;

  /// Restores state saved by save_snapshot() into this simulator, which
  /// must have been constructed with the identical SimConfig and arrival
  /// list (enforced via an embedded fingerprint; parallel_psn may differ —
  /// the two paths are bit-identical). Call before run(). Throws
  /// snapshot::SnapshotError on any mismatch or corruption, leaving no
  /// silently half-restored state behind (the simulator must be discarded
  /// after a failed restore).
  void restore_snapshot(const std::string& path);

  /// Completed control epochs so far (advances during run()).
  std::uint64_t epoch() const { return epoch_; }

 private:
  struct RunningTask {
    appmodel::TaskIndex index = 0;
    TileId tile = kInvalidTile;
    double remaining_cycles = 0.0;
    double activity = 0.0;
    double phase = 0.0;  ///< ripple phase of this task's current draw
    double progress_rate_cps = 0.0;  ///< useful cycles/s achieved last
                                     ///< epoch; throttles NoC injection
    double edf_deadline_s = 0.0;  ///< per-task deadline (EDF, [23])
    double finish_s = -1.0;       ///< completion time, -1 while running
    int hot_epochs = 0;  ///< consecutive epochs over the VE margin
    bool done() const { return remaining_cycles <= 0.0; }
  };
  struct RunningApp {
    cmp::AppInstanceId instance = cmp::kNoApp;
    int outcome_index = -1;
    std::shared_ptr<const appmodel::ApplicationProfile> profile;
    double vdd = 0.0;
    int dop = 0;
    std::vector<RunningTask> tasks;
    double latency_cycles = 0.0;  ///< last measured NoC packet latency
  };

  void admit_pending(double now);
  void commit(const core::ServiceQueue::Admitted& adm, double now);
  /// FNV-1a over every determinism-relevant SimConfig field and the
  /// arrival list (excluding parallel_psn, whose two paths are
  /// bit-identical) — embedded in snapshots to reject mismatched resumes.
  std::uint64_t config_fingerprint() const;
  void save_state(snapshot::Writer& w) const;
  void restore_state(snapshot::Reader& r);
  std::vector<noc::TrafficFlow> build_flows() const;
  void sample_noc();
  void sample_psn();
  void apply_emergencies_and_progress(double now);
  void migrate_hot_tasks();
  bool finish_completed_apps(double now);

  SimConfig cfg_;
  cmp::Platform platform_;
  std::unique_ptr<core::AdmissionPolicy> policy_;
  core::ServiceQueue queue_;
  std::vector<appmodel::AppArrival> arrivals_;
  std::size_t next_arrival_ = 0;

  std::unique_ptr<noc::Network> network_;
  pdn::PsnEstimator psn_estimator_;
  sched::CheckpointModel checkpoint_;
  Rng rng_;

  std::vector<RunningApp> running_;
  std::vector<AppOutcome> outcomes_;
  cmp::AppInstanceId next_instance_ = 1;

  // Epoch-state caches.
  std::vector<double> router_activity_;   ///< flits/cycle per tile
  /// Ordered so snapshot serialization and any future iteration are
  /// deterministic regardless of hash seeding.
  std::map<std::int32_t, double> app_latency_;
  std::vector<double> tile_psn_peak_;
  std::vector<double> tile_psn_avg_;
  /// Tiles throttled this epoch by the proactive guard (from last
  /// epoch's sensor readings).
  std::vector<bool> tile_throttled_;
  /// Sensor view handed to the NoC: each tile reports its domain's peak
  /// PSN, since injecting router current anywhere in a domain disturbs
  /// the domain's most-stressed tile through the shared PDN.
  std::vector<double> noc_psn_sensor_;

  // PSN memoization: quantized domain load signature -> result (bounded
  // LRU, shared key scheme with admission via pdn::PsnCache).
  pdn::PsnCache psn_cache_;

  // Per-epoch scratch for telemetry.
  double epoch_peak_psn_ = 0.0;
  double epoch_avg_psn_ = 0.0;
  double epoch_chip_power_ = 0.0;
  double epoch_noc_latency_ = 0.0;
  std::int32_t epoch_ves_ = 0;
  std::size_t next_fault_ = 0;
  TelemetryRecorder telemetry_;

  // Aggregates.
  RunningStats psn_peak_stats_;
  RunningStats psn_avg_stats_;
  RunningStats latency_stats_;
  RunningStats chip_power_stats_;
  std::uint64_t total_ves_ = 0;
  std::uint64_t total_throttle_epochs_ = 0;
  std::uint64_t total_migrations_ = 0;

  // Simulation clock — members (not run() locals) so snapshots taken at
  // the bottom of an epoch capture "epoch_ epochs completed at t_".
  double t_ = 0.0;
  std::uint64_t epoch_ = 0;
  /// The per-epoch telemetry deltas track the process-wide obs counters
  /// against a "previous value" watermark. The watermarks themselves are
  /// process-local (other simulations tick the same counters), so
  /// snapshots store only the *pending* delta (counter − watermark) and
  /// run() re-anchors the watermark against the live counter on resume.
  std::uint64_t prev_solves_ = 0;
  std::uint64_t prev_cands_ = 0;
  std::uint64_t prev_reroutes_ = 0;
  std::uint64_t pending_solves_ = 0;
  std::uint64_t pending_cands_ = 0;
  std::uint64_t pending_reroutes_ = 0;
  bool restored_ = false;

  // Periodic-snapshot configuration (off unless enabled).
  std::uint64_t snapshot_every_ = 0;
  std::string snapshot_dir_;
};

}  // namespace parm::sim
