#include "sim/telemetry.hpp"

#include <ostream>

namespace parm::sim {

void TelemetryRecorder::write_csv(std::ostream& os) const {
  os << "time_s,peak_psn_percent,avg_psn_percent,chip_power_w,"
        "running_apps,queued_apps,busy_tiles,noc_latency_cycles,"
        "ve_count,pdn_solves,mapper_candidates,panr_reroutes\n";
  for (const EpochSample& s : samples_) {
    os << s.time_s << ',' << s.peak_psn_percent << ','
       << s.avg_psn_percent << ',' << s.chip_power_w << ','
       << s.running_apps << ',' << s.queued_apps << ',' << s.busy_tiles
       << ',' << s.noc_latency_cycles << ',' << s.ve_count << ','
       << s.pdn_solves << ',' << s.mapper_candidates << ','
       << s.panr_reroutes << '\n';
  }
}

}  // namespace parm::sim
