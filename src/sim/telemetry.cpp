#include "sim/telemetry.hpp"

#include <ostream>

namespace parm::sim {

void TelemetryRecorder::write_csv(std::ostream& os) const {
  os << "time_s,peak_psn_percent,avg_psn_percent,chip_power_w,"
        "running_apps,queued_apps,busy_tiles,noc_latency_cycles,"
        "ve_count,pdn_solves,mapper_candidates,panr_reroutes\n";
  for (const EpochSample& s : samples_) {
    os << s.time_s << ',' << s.peak_psn_percent << ','
       << s.avg_psn_percent << ',' << s.chip_power_w << ','
       << s.running_apps << ',' << s.queued_apps << ',' << s.busy_tiles
       << ',' << s.noc_latency_cycles << ',' << s.ve_count << ','
       << s.pdn_solves << ',' << s.mapper_candidates << ','
       << s.panr_reroutes << '\n';
  }
}

void TelemetryRecorder::save(snapshot::Writer& w) const {
  w.begin_section("TELE");
  w.u64(samples_.size());
  for (const EpochSample& s : samples_) {
    w.f64(s.time_s);
    w.f64(s.peak_psn_percent);
    w.f64(s.avg_psn_percent);
    w.f64(s.chip_power_w);
    w.i32(s.running_apps);
    w.i32(s.queued_apps);
    w.i32(s.busy_tiles);
    w.f64(s.noc_latency_cycles);
    w.i32(s.ve_count);
    w.i64(s.pdn_solves);
    w.i64(s.mapper_candidates);
    w.i64(s.panr_reroutes);
  }
}

void TelemetryRecorder::restore(snapshot::Reader& r) {
  r.expect_section("TELE");
  const std::uint64_t n = r.count(80);
  samples_.clear();
  samples_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    EpochSample s;
    s.time_s = r.f64();
    s.peak_psn_percent = r.f64();
    s.avg_psn_percent = r.f64();
    s.chip_power_w = r.f64();
    s.running_apps = r.i32();
    s.queued_apps = r.i32();
    s.busy_tiles = r.i32();
    s.noc_latency_cycles = r.f64();
    s.ve_count = r.i32();
    s.pdn_solves = r.i64();
    s.mapper_candidates = r.i64();
    s.panr_reroutes = r.i64();
    samples_.push_back(s);
  }
}

}  // namespace parm::sim
