// Per-epoch telemetry of a system-simulation run.
//
// When enabled (SimConfig::record_telemetry) the simulator records one
// sample per control epoch: the PSN envelope, chip power, queue and
// occupancy state, the epoch's voltage emergencies, and per-epoch deltas
// of the simulator's instance-scoped obs::Registry activity counters
// (solver invocations, mapper candidate evaluations, PANR reroutes). The
// time series is the raw
// material for plotting runs — both examples/oversubscribed_server and
// examples/parm_runner --telemetry write it via
// TelemetryRecorder::write_csv.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "snapshot/serializer.hpp"

namespace parm::sim {

struct EpochSample {
  double time_s = 0.0;
  double peak_psn_percent = 0.0;  ///< max over powered domains this epoch
  double avg_psn_percent = 0.0;   ///< mean over powered domains
  double chip_power_w = 0.0;
  std::int32_t running_apps = 0;
  std::int32_t queued_apps = 0;
  std::int32_t busy_tiles = 0;
  double noc_latency_cycles = 0.0;  ///< last NoC window's average
  std::int32_t ve_count = 0;        ///< emergencies raised this epoch
  // Deltas of the simulator's metrics registry over this epoch.
  std::int64_t pdn_solves = 0;        ///< transient-solver invocations
  std::int64_t mapper_candidates = 0; ///< PARM candidate regions examined
  std::int64_t panr_reroutes = 0;     ///< PANR non-preferred-hop decisions
};

class TelemetryRecorder {
 public:
  void record(const EpochSample& sample) { samples_.push_back(sample); }

  const std::vector<EpochSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  /// Writes the series as CSV with a header row.
  void write_csv(std::ostream& os) const;

  // --- Snapshot hooks ---
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  std::vector<EpochSample> samples_;
};

}  // namespace parm::sim
