// Per-epoch telemetry of a system-simulation run.
//
// When enabled (SimConfig::record_telemetry) the simulator records one
// sample per control epoch: the PSN envelope, chip power, queue and
// occupancy state, and the epoch's voltage emergencies. The time series
// is the raw material for plotting runs (see
// examples/oversubscribed_server and TelemetryRecorder::write_csv).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace parm::sim {

struct EpochSample {
  double time_s = 0.0;
  double peak_psn_percent = 0.0;  ///< max over powered domains this epoch
  double avg_psn_percent = 0.0;   ///< mean over powered domains
  double chip_power_w = 0.0;
  std::int32_t running_apps = 0;
  std::int32_t queued_apps = 0;
  std::int32_t busy_tiles = 0;
  double noc_latency_cycles = 0.0;  ///< last NoC window's average
  std::int32_t ve_count = 0;        ///< emergencies raised this epoch
};

class TelemetryRecorder {
 public:
  void record(const EpochSample& sample) { samples_.push_back(sample); }

  const std::vector<EpochSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  /// Writes the series as CSV with a header row.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<EpochSample> samples_;
};

}  // namespace parm::sim
