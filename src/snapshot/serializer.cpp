#include "snapshot/serializer.hpp"

#include <bit>
#include <sstream>

namespace parm::snapshot {

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(const std::string& s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::vec_f64(const std::vector<double>& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void Writer::vec_bool(const std::vector<bool>& v) {
  u64(v.size());
  for (bool x : v) b(x);
}

void Writer::begin_section(const char tag[4]) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(tag[i]));
}

void Reader::need(std::size_t n) const {
  if (buf_.size() - pos_ < n) {
    std::ostringstream os;
    os << "snapshot truncated: need " << n << " bytes at offset " << pos_
       << " but only " << (buf_.size() - pos_) << " remain";
    throw SnapshotError(os.str());
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

bool Reader::b() {
  const std::uint8_t v = u8();
  if (v > 1) {
    std::ostringstream os;
    os << "snapshot corrupt: boolean byte holds " << static_cast<int>(v)
       << " at offset " << (pos_ - 1);
    throw SnapshotError(os.str());
  }
  return v != 0;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint64_t n = count(1);
  need(static_cast<std::size_t>(n));
  std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

std::vector<double> Reader::vec_f64() {
  const std::uint64_t n = count(8);
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
  return v;
}

std::vector<bool> Reader::vec_bool() {
  const std::uint64_t n = count(1);
  std::vector<bool> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(b());
  return v;
}

void Reader::expect_section(const char tag[4]) {
  need(4);
  char found[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    found[i] = static_cast<char>(buf_[pos_ + static_cast<std::size_t>(i)]);
  }
  if (found[0] != tag[0] || found[1] != tag[1] || found[2] != tag[2] ||
      found[3] != tag[3]) {
    std::ostringstream os;
    os << "snapshot corrupt: expected section '" << tag[0] << tag[1]
       << tag[2] << tag[3] << "' at offset " << pos_ << " but found '"
       << found << "'";
    throw SnapshotError(os.str());
  }
  pos_ += 4;
}

std::uint64_t Reader::count(std::uint64_t min_element_bytes) {
  const std::uint64_t n = u64();
  const std::uint64_t cap = remaining() / (min_element_bytes ? min_element_bytes : 1);
  if (n > cap) {
    std::ostringstream os;
    os << "snapshot corrupt: count " << n << " at offset " << (pos_ - 8)
       << " exceeds the " << cap << " elements the remaining "
       << remaining() << " bytes could hold";
    throw SnapshotError(os.str());
  }
  return n;
}

void Reader::expect_end() const {
  if (pos_ != buf_.size()) {
    std::ostringstream os;
    os << "snapshot corrupt: " << (buf_.size() - pos_)
       << " trailing bytes after the final section";
    throw SnapshotError(os.str());
  }
}

}  // namespace parm::snapshot
