// Binary serialization primitives for simulator snapshots.
//
// A snapshot is a flat little-endian byte stream assembled by Writer and
// decoded by Reader. Every stateful subsystem appends its state between a
// begin_section / end_section pair; the section tags double as structural
// checks when reading (a reader that drifts out of sync fails loudly on
// the next tag instead of silently misinterpreting bytes).
//
// All multi-byte values are written little-endian regardless of host
// order, and doubles are written as their IEEE-754 bit patterns, so a
// snapshot restores bit-identically across processes. Reader never reads
// past the end of its buffer: every accessor bounds-checks and throws
// SnapshotError with a diagnostic message on malformed input.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace parm::snapshot {

/// Thrown for every malformed-snapshot condition: truncation, bad section
/// tag, out-of-range counts, CRC/header mismatches (see snapshot_file.hpp).
/// Loading never crashes and never half-applies silently — a failed load
/// always surfaces as this exception.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Append-only little-endian byte sink.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  /// IEEE-754 bit pattern; restores bit-identically (including ±inf).
  void f64(double v);
  /// Length-prefixed UTF-8 bytes.
  void str(const std::string& s);

  void vec_f64(const std::vector<double>& v);
  void vec_bool(const std::vector<bool>& v);

  /// Writes a 4-char section tag (e.g. "RNG0"). Readers must consume the
  /// same tags in the same order.
  void begin_section(const char tag[4]);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a byte buffer.
class Reader {
 public:
  explicit Reader(std::vector<std::uint8_t> bytes)
      : buf_(std::move(bytes)) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool b();
  double f64();
  std::string str();

  std::vector<double> vec_f64();
  std::vector<bool> vec_bool();

  /// Consumes a section tag and throws SnapshotError (naming both the
  /// expected and the found tag) on mismatch.
  void expect_section(const char tag[4]);

  /// Length prefix sanity guard: throws unless n <= remaining bytes /
  /// min_element_bytes (prevents huge allocations from corrupt counts).
  std::uint64_t count(std::uint64_t min_element_bytes = 1);

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool at_end() const { return pos_ == buf_.size(); }
  /// Throws unless the whole buffer was consumed (trailing-garbage guard).
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace parm::snapshot
