#include "snapshot/snapshot_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace parm::snapshot {

namespace {

std::array<std::uint64_t, 256> make_crc64_table() {
  // Reflected CRC-64/ECMA: process with the reversed polynomial.
  constexpr std::uint64_t poly = 0xC96C5795D7870F42ULL;
  std::array<std::uint64_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ poly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw SnapshotError("snapshot file '" + path + "': " + what);
}

[[noreturn]] void fail_errno(const std::string& path,
                             const std::string& what) {
  fail(path, what + ": " + std::strerror(errno));
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash + 1);
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint64_t crc64(const std::uint8_t* data, std::size_t size,
                    std::uint64_t seed) {
  static const std::array<std::uint64_t, 256> table = make_crc64_table();
  std::uint64_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

void write_file(const std::string& path, const Writer& payload) {
  std::vector<std::uint8_t> out(kHeaderBytes + payload.size());
  std::memcpy(out.data(), kMagic, 8);
  put_u32(out.data() + 8, kFormatVersion);
  put_u64(out.data() + 12, payload.size());
  put_u64(out.data() + 20,
          crc64(payload.bytes().data(), payload.size()));
  if (!payload.bytes().empty()) {
    std::memcpy(out.data() + kHeaderBytes, payload.bytes().data(),
                payload.size());
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail_errno(tmp, "cannot create temp file");
  std::size_t written = 0;
  while (written < out.size()) {
    const ssize_t n =
        ::write(fd, out.data() + written, out.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail_errno(tmp, "write failed");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail_errno(tmp, "fsync failed");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail_errno(tmp, "close failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail_errno(path, "atomic rename failed");
  }
  // Persist the rename itself: fsync the containing directory.
  const std::string dir = dirname_of(path);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best effort; the data and the rename are already done
    ::close(dfd);
  }
}

Reader read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open");
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) fail(path, "read error");

  if (bytes.size() < kHeaderBytes) {
    std::ostringstream os;
    os << "truncated header: " << bytes.size() << " bytes, need at least "
       << kHeaderBytes;
    fail(path, os.str());
  }
  if (std::memcmp(bytes.data(), kMagic, 8) != 0) {
    fail(path, "bad magic (not a PARM snapshot)");
  }
  const std::uint32_t version = get_u32(bytes.data() + 8);
  if (version != kFormatVersion) {
    std::ostringstream os;
    os << "unsupported format version " << version << " (this build reads "
       << kFormatVersion << ")";
    fail(path, os.str());
  }
  const std::uint64_t payload_size = get_u64(bytes.data() + 12);
  if (payload_size != bytes.size() - kHeaderBytes) {
    std::ostringstream os;
    os << "payload size mismatch: header claims " << payload_size
       << " bytes but the file holds " << (bytes.size() - kHeaderBytes);
    fail(path, os.str());
  }
  const std::uint64_t expected_crc = get_u64(bytes.data() + 20);
  const std::uint64_t actual_crc =
      crc64(bytes.data() + kHeaderBytes, payload_size);
  if (expected_crc != actual_crc) {
    std::ostringstream os;
    os << "CRC mismatch: header " << std::hex << expected_crc
       << ", payload " << actual_crc << " (file corrupt)";
    fail(path, os.str());
  }
  return Reader(std::vector<std::uint8_t>(
      bytes.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes),
      bytes.end()));
}

}  // namespace parm::snapshot
