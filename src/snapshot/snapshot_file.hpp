// Crash-safe, integrity-checked snapshot files.
//
// Layout (all little-endian):
//   bytes 0-7   magic "PARMSNP1"
//   bytes 8-11  format version (u32, kFormatVersion)
//   bytes 12-19 payload size in bytes (u64)
//   bytes 20-27 CRC-64/ECMA of the payload (u64)
//   bytes 28-   payload (a serializer::Writer byte stream)
//
// write_file() is atomic and durable: the bytes go to a temp file in the
// destination directory, are fsync'd, and the temp file is rename(2)'d
// over the final path (then the directory is fsync'd), so a crash at any
// point leaves either the previous file or the complete new one — never a
// torn snapshot. read_file() validates magic, version, size, and CRC
// before returning a Reader, so every form of truncation or corruption is
// reported as SnapshotError instead of being parsed.
#pragma once

#include <cstdint>
#include <string>

#include "snapshot/serializer.hpp"

namespace parm::snapshot {

inline constexpr char kMagic[8] = {'P', 'A', 'R', 'M', 'S', 'N', 'P', '1'};
/// v2: the engine payload gained the time-series store section ("TSDB").
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::size_t kHeaderBytes = 28;

/// CRC-64/ECMA-182 (poly 0x42F0E1EBA9EA3693, reflected), as used by xz.
std::uint64_t crc64(const std::uint8_t* data, std::size_t size,
                    std::uint64_t seed = 0);

/// Atomically writes header + payload to `path` (temp file + fsync +
/// rename + directory fsync). Throws SnapshotError on any I/O failure.
void write_file(const std::string& path, const Writer& payload);

/// Loads and validates `path`; returns a Reader positioned at the start
/// of the payload. Throws SnapshotError naming the exact defect (missing
/// file, short header, bad magic, unsupported version, size mismatch,
/// CRC mismatch).
Reader read_file(const std::string& path);

}  // namespace parm::snapshot
