// Unit tests for parm_appmodel: task graphs, the 13-benchmark suite,
// offline application profiles, and workload-sequence generation.
#include <gtest/gtest.h>

#include <set>

#include "appmodel/application.hpp"
#include "appmodel/benchmarks.hpp"
#include "appmodel/task_graph.hpp"
#include "appmodel/workload.hpp"
#include "common/check.hpp"
#include "power/technology.hpp"

namespace parm::appmodel {
namespace {

// -------------------------------------------------------------- task graph

TEST(TaskGraph, GeneratorsProduceValidDags) {
  Rng rng(42);
  for (GraphShape shape : {GraphShape::Pipeline, GraphShape::Butterfly,
                           GraphShape::Tree, GraphShape::Random}) {
    for (TaskIndex n : {4, 8, 16, 32}) {
      const TaskGraph g = TaskGraph::generate(shape, n, 100.0, rng);
      EXPECT_EQ(g.task_count(), n);
      EXPECT_TRUE(g.validate()) << to_string(shape) << " n=" << n;
      EXPECT_GT(g.total_volume(), 0.0);
      for (const auto& e : g.edges()) {
        EXPECT_LT(e.src, e.dst);  // generator invariant
      }
    }
  }
}

TEST(TaskGraph, ButterflyHasLogStages) {
  Rng rng(1);
  const TaskGraph g = TaskGraph::generate(GraphShape::Butterfly, 8, 1.0,
                                          rng);
  // 8 tasks → 3 stages × 4 pairs = 12 edges.
  EXPECT_EQ(g.edges().size(), 12u);
}

TEST(TaskGraph, TreeHasNminus1Edges) {
  Rng rng(1);
  const TaskGraph g = TaskGraph::generate(GraphShape::Tree, 16, 1.0, rng);
  EXPECT_EQ(g.edges().size(), 15u);
}

TEST(TaskGraph, EdgesSortedByDecreasingVolume) {
  Rng rng(3);
  const TaskGraph g =
      TaskGraph::generate(GraphShape::Random, 16, 50.0, rng);
  const auto sorted = g.edges_by_decreasing_volume();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_GE(sorted[i - 1].volume_flits, sorted[i].volume_flits);
  }
  EXPECT_EQ(sorted.size(), g.edges().size());
}

TEST(TaskGraph, ValidateRejectsCycles) {
  std::vector<ApgEdge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}};
  EXPECT_THROW(TaskGraph(3, edges), CheckError);
}

TEST(TaskGraph, ValidateRejectsBadIds) {
  EXPECT_THROW(TaskGraph(2, {{0, 5, 1.0}}), CheckError);
  EXPECT_THROW(TaskGraph(2, {{0, 0, 1.0}}), CheckError);
  EXPECT_THROW(TaskGraph(2, {{0, 1, -1.0}}), CheckError);
}

TEST(TaskGraph, AcceptsNonTopologicalEdgeOrderWithoutCycle) {
  // dst < src is fine as long as the graph is acyclic.
  const TaskGraph g(3, {{2, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_TRUE(g.validate());
}

TEST(TaskGraph, IncidentVolume) {
  const TaskGraph g(3, {{0, 1, 2.0}, {1, 2, 3.0}});
  EXPECT_DOUBLE_EQ(g.incident_volume(1), 5.0);
  EXPECT_DOUBLE_EQ(g.incident_volume(0), 2.0);
  EXPECT_DOUBLE_EQ(g.total_volume(), 5.0);
}

// -------------------------------------------------------------- benchmarks

TEST(Benchmarks, SuiteHasThirteenApps) {
  EXPECT_EQ(benchmark_suite().size(), 13u);
  std::set<std::string> names;
  for (const auto& b : benchmark_suite()) names.insert(b.name);
  EXPECT_EQ(names.size(), 13u);  // unique names
}

TEST(Benchmarks, PaperGroupsMatch) {
  // Paper section 5.1 group membership; radix appears in both.
  const auto comm = benchmarks_of_kind(WorkloadKind::CommunicationIntensive);
  const auto comp = benchmarks_of_kind(WorkloadKind::ComputeIntensive);
  EXPECT_EQ(comm.size(), 7u);
  EXPECT_EQ(comp.size(), 7u);
  auto has = [](const auto& v, const std::string& n) {
    for (const auto* b : v) {
      if (b->name == n) return true;
    }
    return false;
  };
  for (const char* n :
       {"cholesky", "fft", "radix", "raytrace", "dedup", "canneal", "vips"}) {
    EXPECT_TRUE(has(comm, n)) << n;
  }
  for (const char* n : {"swaptions", "fluidanimate", "streamcluster",
                        "blackscholes", "radix", "bodytrack", "radiosity"}) {
    EXPECT_TRUE(has(comp, n)) << n;
  }
}

TEST(Benchmarks, CommAppsInjectMoreThanComputeApps) {
  double comm_min = 1e9, comp_max = 0.0;
  for (const auto& b : benchmark_suite()) {
    if (b.kind == WorkloadKind::CommunicationIntensive) {
      comm_min = std::min(comm_min, b.comm_intensity);
    }
    if (b.kind == WorkloadKind::ComputeIntensive) {
      comp_max = std::max(comp_max, b.comm_intensity);
    }
  }
  EXPECT_GT(comm_min, comp_max);
}

TEST(Benchmarks, LookupByName) {
  EXPECT_EQ(benchmark_by_name("fft").shape, GraphShape::Butterfly);
  EXPECT_THROW(benchmark_by_name("doom"), CheckError);
}

TEST(Benchmarks, MaxDopsAreValid) {
  for (const auto& b : benchmark_suite()) {
    EXPECT_GE(b.max_dop, 4);
    EXPECT_LE(b.max_dop, 32);
    EXPECT_EQ(b.max_dop % 4, 0);
  }
}

// ---------------------------------------------------------------- profiles

class ProfileTest : public ::testing::Test {
 protected:
  const BenchmarkProfile& bench_ = benchmark_by_name("fft");
  ApplicationProfile profile_{bench_, 1234};
  power::VoltageFrequencyModel vf_{power::technology_node(7)};
  power::CorePowerModel core_{power::technology_node(7)};
  power::RouterPowerModel router_{power::technology_node(7)};
};

TEST_F(ProfileTest, PermittedDopsAreMultiplesOf4) {
  for (int d : profile_.dops()) {
    EXPECT_EQ(d % 4, 0);
    EXPECT_GE(d, 4);
    EXPECT_LE(d, bench_.max_dop);
  }
  EXPECT_EQ(profile_.dops().front(), 4);
  EXPECT_EQ(profile_.dops().back(), bench_.max_dop);
}

TEST_F(ProfileTest, VariantsMatchDop) {
  for (int d : profile_.dops()) {
    const DopVariant& v = profile_.variant(d);
    EXPECT_EQ(v.dop, d);
    EXPECT_EQ(static_cast<int>(v.tasks.size()), d);
    EXPECT_EQ(v.graph.task_count(), d);
    EXPECT_TRUE(v.graph.validate());
  }
  EXPECT_THROW(profile_.variant(5), CheckError);
}

TEST_F(ProfileTest, WcetDecreasesWithVdd) {
  for (int d : profile_.dops()) {
    double prev = 1e18;
    for (double v : {0.4, 0.5, 0.6, 0.7, 0.8}) {
      const double w = profile_.wcet_seconds(v, d, vf_);
      EXPECT_LT(w, prev);
      prev = w;
    }
  }
}

TEST_F(ProfileTest, WcetDecreasesWithDopUpToMax) {
  // With the paper's sync-overhead model, WCET improves monotonically up
  // to the benchmark's max useful DoP.
  double prev = 1e18;
  for (int d : profile_.dops()) {
    const double w = profile_.wcet_seconds(0.6, d, vf_);
    EXPECT_LT(w, prev) << "dop " << d;
    prev = w;
  }
}

TEST_F(ProfileTest, PowerGrowsWithVddAndDop) {
  EXPECT_LT(profile_.estimated_power_w(0.4, 8, vf_, core_, router_),
            profile_.estimated_power_w(0.6, 8, vf_, core_, router_));
  EXPECT_LT(profile_.estimated_power_w(0.5, 8, vf_, core_, router_),
            profile_.estimated_power_w(0.5, 16, vf_, core_, router_));
}

TEST_F(ProfileTest, DeterministicInSeed) {
  ApplicationProfile a(bench_, 777), b(bench_, 777), c(bench_, 778);
  const auto& va = a.variant(8);
  const auto& vb = b.variant(8);
  const auto& vc = c.variant(8);
  for (std::size_t i = 0; i < va.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(va.tasks[i].work_cycles, vb.tasks[i].work_cycles);
    EXPECT_DOUBLE_EQ(va.tasks[i].activity, vb.tasks[i].activity);
  }
  // Different seed should perturb at least one task.
  bool any_diff = false;
  for (std::size_t i = 0; i < va.tasks.size(); ++i) {
    any_diff |= va.tasks[i].work_cycles != vc.tasks[i].work_cycles;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(ProfileTest, GraphVolumeMatchesCommIntensity) {
  const DopVariant& v = profile_.variant(16);
  double total_work = 0;
  for (const auto& t : v.tasks) total_work += t.work_cycles;
  EXPECT_NEAR(v.graph.total_volume(),
              total_work * bench_.comm_intensity / 1000.0,
              v.graph.total_volume() * 1e-9);
}

TEST_F(ProfileTest, ActivitiesWithinConfiguredSpread) {
  for (int d : profile_.dops()) {
    for (const auto& t : profile_.variant(d).tasks) {
      EXPECT_GE(t.activity,
                bench_.base_activity - bench_.activity_spread - 1e-9);
      EXPECT_LE(t.activity,
                bench_.base_activity + bench_.activity_spread + 1e-9);
    }
  }
}

TEST_F(ProfileTest, InjectionRateScalesWithFrequency) {
  const double r4 = profile_.task_injection_rate(0.4, 8, vf_);
  const double r8 = profile_.task_injection_rate(0.8, 8, vf_);
  EXPECT_NEAR(r8 / r4, vf_.fmax(0.8) / vf_.fmax(0.4), 1e-9);
}

// ---------------------------------------------------------------- workload

TEST(Workload, SequenceBasics) {
  SequenceConfig cfg;
  cfg.kind = SequenceKind::Compute;
  cfg.app_count = 20;
  cfg.inter_arrival_s = 0.1;
  cfg.seed = 9;
  const auto seq = make_sequence(cfg);
  ASSERT_EQ(seq.size(), 20u);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].id, static_cast<int>(i));
    EXPECT_NEAR(seq[i].arrival_s, 0.1 * static_cast<double>(i), 1e-12);
    EXPECT_GT(seq[i].deadline_s, seq[i].arrival_s);
    ASSERT_NE(seq[i].bench, nullptr);
    ASSERT_NE(seq[i].profile, nullptr);
    // Compute sequences draw only from the compute group (or radix).
    EXPECT_NE(seq[i].bench->kind, WorkloadKind::CommunicationIntensive);
  }
}

TEST(Workload, CommunicationSequencesUseCommGroup) {
  SequenceConfig cfg;
  cfg.kind = SequenceKind::Communication;
  cfg.app_count = 30;
  const auto seq = make_sequence(cfg);
  for (const auto& a : seq) {
    EXPECT_NE(a.bench->kind, WorkloadKind::ComputeIntensive);
  }
}

TEST(Workload, DeterministicInSeed) {
  SequenceConfig cfg;
  cfg.seed = 5;
  const auto a = make_sequence(cfg);
  const auto b = make_sequence(cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bench->name, b[i].bench->name);
    EXPECT_DOUBLE_EQ(a[i].deadline_s, b[i].deadline_s);
  }
}

TEST(Workload, MixedDrawsFromBothGroups) {
  SequenceConfig cfg;
  cfg.kind = SequenceKind::Mixed;
  cfg.app_count = 60;
  cfg.seed = 31;
  const auto seq = make_sequence(cfg);
  bool any_comm = false, any_comp = false;
  for (const auto& a : seq) {
    any_comm |= a.bench->kind == WorkloadKind::CommunicationIntensive;
    any_comp |= a.bench->kind == WorkloadKind::ComputeIntensive;
  }
  EXPECT_TRUE(any_comm);
  EXPECT_TRUE(any_comp);
}

TEST(Workload, InvalidConfigThrows) {
  SequenceConfig cfg;
  cfg.app_count = 0;
  EXPECT_THROW(make_sequence(cfg), CheckError);
  cfg.app_count = 5;
  cfg.inter_arrival_s = 0.0;
  EXPECT_THROW(make_sequence(cfg), CheckError);
  cfg.inter_arrival_s = 0.1;
  cfg.deadline_slack_min = 0.5;
  EXPECT_THROW(make_sequence(cfg), CheckError);
}

}  // namespace
}  // namespace parm::appmodel
