// Tests for the blackbox post-mortem module: the forgiving JSONL
// loaders (events + time series) and the incident analyzer, on both
// synthetic hand-built timelines and a real simulator run.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "appmodel/workload.hpp"
#include "exp/experiments.hpp"
#include "obs/blackbox.hpp"
#include "obs/events.hpp"
#include "sim/system_sim.hpp"

namespace parm::obs {
namespace {

std::string dump(const std::vector<Event>& events) {
  std::ostringstream os;
  for (const Event& e : events) {
    write_event_json(os, e);
    os << '\n';
  }
  return os.str();
}

Event make_event(EventType type, double t, std::int32_t app = -1,
                 std::int32_t domain = -1, double a = 0.0,
                 double b = 0.0) {
  Event e;
  e.type = type;
  e.t = t;
  e.app = app;
  e.domain = domain;
  e.a = a;
  e.b = b;
  return e;
}

// ---------------------------------------------------------------------
// Event loader

TEST(BlackboxLoader, RoundTripsRecorderDump) {
  std::vector<Event> events;
  Event e1 = make_event(EventType::kAppAdmit, 0.1, 7, -1, 0.58, 16.0);
  e1.seq = 0;
  Event e2 = make_event(EventType::kVeOnset, 0.2, -1, 9, 6.5);
  e2.seq = 1;
  e2.tile = 3;
  events.push_back(e1);
  events.push_back(e2);

  std::istringstream in(dump(events));
  BlackboxLoadStats stats;
  const auto loaded = load_events_jsonl(in, &stats);
  EXPECT_EQ(stats.lines, 2u);
  EXPECT_EQ(stats.parsed, 2u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(stats.out_of_order, 0u);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].type, EventType::kAppAdmit);
  EXPECT_EQ(loaded[0].app, 7);
  EXPECT_DOUBLE_EQ(loaded[0].a, 0.58);  // "vdd" key mapped back to a
  EXPECT_DOUBLE_EQ(loaded[0].b, 16.0);
  EXPECT_EQ(loaded[1].type, EventType::kVeOnset);
  EXPECT_EQ(loaded[1].domain, 9);
  EXPECT_EQ(loaded[1].tile, 3);
  EXPECT_DOUBLE_EQ(loaded[1].a, 6.5);
}

TEST(BlackboxLoader, SkipsMalformedLinesAndCountsThem) {
  const std::string text =
      "{\"seq\":0,\"t\":0.1,\"type\":\"app.arrival\",\"app\":1}\n"
      "not json at all\n"
      "{\"seq\":1,\"t\":0.2,\"type\":\"no.such.type\"}\n"
      "{\"seq\":2,\"type\":\"app.arrival\"}\n"  // missing t
      "{\"seq\":3,\"t\":0.3,\"type\":\"app.complete\",\"app\":1}\n"
      "{\"truncated\":\n";
  std::istringstream in(text);
  BlackboxLoadStats stats;
  const auto loaded = load_events_jsonl(in, &stats);
  EXPECT_EQ(stats.lines, 6u);
  EXPECT_EQ(stats.parsed, 2u);
  EXPECT_EQ(stats.skipped, 4u);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[1].type, EventType::kAppComplete);
}

TEST(BlackboxLoader, SortsShuffledInputAndCountsRegressions) {
  std::vector<Event> events;
  for (int i = 0; i < 4; ++i) {
    Event e = make_event(EventType::kAppArrival, 0.1 * (4 - i), i);
    e.seq = static_cast<std::uint64_t>(4 - i);
    events.push_back(e);
  }
  std::istringstream in(dump(events));
  BlackboxLoadStats stats;
  const auto loaded = load_events_jsonl(in, &stats);
  EXPECT_EQ(stats.out_of_order, 3u);
  ASSERT_EQ(loaded.size(), 4u);
  for (std::size_t i = 1; i < loaded.size(); ++i) {
    EXPECT_LE(loaded[i - 1].t, loaded[i].t);
  }
}

// ---------------------------------------------------------------------
// Time-series loader

TEST(BlackboxLoader, ParsesTimeSeriesExport) {
  const std::string text =
      "{\"series\":\"psn.domain9.peak_percent\",\"level\":0,"
      "\"t_start\":0.1,\"t_end\":0.1,\"min\":6,\"max\":6,\"mean\":6,"
      "\"count\":1}\n"
      "{\"series\":\"psn.domain9.peak_percent\",\"level\":1,"
      "\"t_start\":0,\"t_end\":0.2,\"min\":4,\"max\":6.5,\"mean\":5,"
      "\"count\":8}\n"
      "garbage\n"
      "{\"series\":\"bad.window\",\"level\":0,\"t_start\":2,"
      "\"t_end\":1}\n";
  std::istringstream in(text);
  BlackboxLoadStats stats;
  const TsArchive ts = load_timeseries_jsonl(in, &stats);
  EXPECT_EQ(stats.parsed, 2u);
  EXPECT_EQ(stats.skipped, 2u);
  ASSERT_EQ(ts.size(), 1u);
  const auto& pts = ts.at("psn.domain9.peak_percent");
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].level, 0);
  EXPECT_DOUBLE_EQ(pts[1].max, 6.5);
  EXPECT_EQ(pts[1].count, 8u);
}

// ---------------------------------------------------------------------
// Incident analyzer (synthetic timeline)

// A hand-built story: apps 1 and 2 map into domain 4, congestion opens,
// the domain crosses the VE margin (trigger), app 1 takes VE rollbacks,
// a throttle responds, app 2 completes late (second trigger).
std::vector<Event> synthetic_story() {
  std::vector<Event> ev;
  std::uint64_t seq = 0;
  auto push = [&](Event e) {
    e.seq = seq++;
    ev.push_back(e);
  };
  push(make_event(EventType::kAppArrival, 0.00, 1));
  push(make_event(EventType::kAppAdmit, 0.00, 1, -1, 0.6, 8.0));
  push(make_event(EventType::kAppMap, 0.00, 1, 4, 4.0, 4.0));
  push(make_event(EventType::kAppArrival, 0.01, 2));
  push(make_event(EventType::kAppMap, 0.01, 2, 4, 2.0, 4.0));
  push(make_event(EventType::kNocCongestionOnset, 0.02, -1, -1, 0.7, 40.0));
  push(make_event(EventType::kVeOnset, 0.05, -1, 4, 6.8));
  push(make_event(EventType::kAppVe, 0.051, 1, -1, 6.8, 0.0));
  Event thr = make_event(EventType::kAppThrottle, 0.06, 1, -1, 6.8);
  thr.tile = 12;
  push(thr);
  push(make_event(EventType::kVeClear, 0.08, -1, 4, 4.0));
  push(make_event(EventType::kAppComplete, 0.09, 1, -1, 1.0, -0.01));
  push(make_event(EventType::kAppDeadlineMiss, 0.09, 2, -1, 0.02));
  return ev;
}

TsArchive synthetic_ts() {
  TsArchive ts;
  auto& pts = ts["psn.domain4.peak_percent"];
  for (int i = 0; i <= 10; ++i) {
    TsPoint p;
    p.level = 0;
    p.t_start = p.t_end = 0.01 * i;
    p.min = p.max = p.mean = i < 5 ? 4.0 + 0.6 * i : 7.0 - 0.3 * (i - 5);
    p.count = 1;
    pts.push_back(p);
  }
  return ts;
}

TEST(BlackboxAnalyzer, BuildsCausalWindowAroundVeOnset) {
  IncidentQuery q;
  q.window_s = 0.05;
  const IncidentReport report =
      analyze_incidents(synthetic_story(), synthetic_ts(), q);
  EXPECT_EQ(report.total_triggers, 2u);
  ASSERT_EQ(report.incidents.size(), 2u);

  const Incident& ve = report.incidents[0];
  EXPECT_EQ(ve.trigger.type, EventType::kVeOnset);
  EXPECT_EQ(ve.domain, 4);
  // Both apps were mapped into domain 4 and still live at t=0.05.
  EXPECT_EQ(ve.co_resident, (std::vector<std::int32_t>{1, 2}));
  EXPECT_EQ(ve.droop_series, "psn.domain4.peak_percent");
  EXPECT_EQ(ve.droop_level, 0);
  EXPECT_FALSE(ve.droop.empty());
  // The congestion onset at t=0.02 is inside the window.
  ASSERT_EQ(ve.congestion.size(), 1u);
  EXPECT_EQ(ve.congestion[0].type, EventType::kNocCongestionOnset);
  // App 1's rollback and the throttle response are attributed.
  ASSERT_EQ(ve.ves.size(), 1u);
  ASSERT_EQ(ve.responses.size(), 1u);
  EXPECT_EQ(ve.responses[0].response.type, EventType::kAppThrottle);
  // The response effect is measured from the droop waveform: peak
  // before (7.0 at t=0.05) vs after (decaying tail).
  EXPECT_TRUE(ve.responses[0].measured);
  EXPECT_GT(ve.responses[0].peak_before, ve.responses[0].peak_after);

  const Incident& miss = report.incidents[1];
  EXPECT_EQ(miss.trigger.type, EventType::kAppDeadlineMiss);
  EXPECT_EQ(miss.trigger.app, 2);
  // The miss resolves its domain through app 2's kAppMap.
  EXPECT_EQ(miss.domain, 4);
}

TEST(BlackboxAnalyzer, FiltersByAppDomainAndLimit) {
  const auto story = synthetic_story();
  const TsArchive ts = synthetic_ts();

  IncidentQuery by_app;
  by_app.app = 2;
  const auto r_app = analyze_incidents(story, ts, by_app);
  EXPECT_EQ(r_app.total_triggers, 2u);
  // Both incidents involve app 2 (co-resident in the VE, trigger of the
  // miss).
  EXPECT_EQ(r_app.incidents.size(), 2u);

  IncidentQuery by_bad_domain;
  by_bad_domain.domain = 11;
  EXPECT_TRUE(analyze_incidents(story, ts, by_bad_domain).incidents.empty());

  IncidentQuery limited;
  limited.limit = 1;
  const auto r_lim = analyze_incidents(story, ts, limited);
  EXPECT_EQ(r_lim.total_triggers, 2u);
  EXPECT_EQ(r_lim.incidents.size(), 1u);
}

TEST(BlackboxAnalyzer, WritersAreDeterministicAndWellFormed) {
  IncidentQuery q;
  const IncidentReport report =
      analyze_incidents(synthetic_story(), synthetic_ts(), q);

  std::ostringstream t1, t2, j1, j2;
  write_incident_text(t1, report);
  write_incident_text(t2, report);
  write_incident_json(j1, report);
  write_incident_json(j2, report);
  EXPECT_EQ(t1.str(), t2.str());
  EXPECT_EQ(j1.str(), j2.str());
  EXPECT_NE(t1.str().find("ve.onset"), std::string::npos);
  EXPECT_NE(t1.str().find("droop trajectory"), std::string::npos);
  EXPECT_EQ(j1.str().front(), '{');
  EXPECT_NE(j1.str().find("\"incidents\":["), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end against a real run

TEST(BlackboxAnalyzer, AnalyzesRealSimulatorArtifacts) {
  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Mixed;
  seq.app_count = 6;
  seq.inter_arrival_s = 0.05;
  seq.seed = 3;
  sim::SimConfig cfg = exp::default_sim_config();
  cfg.framework.mapping = "PARM";
  cfg.framework.routing = "PANR";
  cfg.record_events = true;
  cfg.record_timeseries = true;
  sim::SystemSimulator simulator(cfg, appmodel::make_sequence(seq));
  simulator.run();

  std::ostringstream ev_os, ts_os;
  simulator.recorder().dump_jsonl(ev_os);
  simulator.timeseries().dump_jsonl(ts_os);

  std::istringstream ev_in(ev_os.str()), ts_in(ts_os.str());
  BlackboxLoadStats ev_stats, ts_stats;
  const auto events = load_events_jsonl(ev_in, &ev_stats);
  const TsArchive ts = load_timeseries_jsonl(ts_in, &ts_stats);
  // Everything the engine writes, the loaders read back.
  EXPECT_EQ(ev_stats.skipped, 0u);
  EXPECT_EQ(ev_stats.parsed, events.size());
  EXPECT_EQ(ts_stats.skipped, 0u);
  EXPECT_GT(ts.size(), 0u);

  IncidentQuery q;
  const IncidentReport report = analyze_incidents(events, ts, q);
  // The oversubscribed mixed workload always produces VE-margin
  // crossings; each must resolve its domain and droop trajectory.
  EXPECT_GT(report.total_triggers, 0u);
  for (const Incident& inc : report.incidents) {
    if (inc.trigger.type == EventType::kVeOnset) {
      EXPECT_GE(inc.domain, 0);
      EXPECT_FALSE(inc.droop.empty()) << "domain " << inc.domain;
    }
  }
}

}  // namespace
}  // namespace parm::obs
