// Monte Carlo campaign test suite (src/campaign):
//  - Wilson and Clopper-Pearson intervals pinned against published table
//    values, plus their structural invariants (nesting, monotonicity,
//    edge cases at k = 0 and k = n);
//  - property evaluation over synthetic run sets (failure counting,
//    failing-seed capture, pass/fail verdicts including the bound-zero
//    rule);
//  - a real mini-campaign on the fleet driver: repeatable byte-for-byte
//    across repeats, thread counts, and batch widths, with a
//    well-formed JSON report.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/stats.hpp"
#include "common/check.hpp"
#include "exp/experiments.hpp"

namespace parm {
namespace {

// ------------------------------------------------------------ intervals

TEST(WilsonInterval, MatchesKnownTableValues) {
  // k = 5, n = 100 at 95 %: the standard worked example
  // (e.g. Brown/Cai/DasGupta 2001): [0.0215, 0.1118].
  const campaign::Interval iv = campaign::wilson_interval(5, 100);
  EXPECT_NEAR(iv.lower, 0.0215, 5e-4);
  EXPECT_NEAR(iv.upper, 0.1118, 5e-4);

  // k = 0: lower pins to 0, upper is z^2 / (n + z^2).
  const campaign::Interval zero = campaign::wilson_interval(0, 50);
  EXPECT_EQ(zero.lower, 0.0);
  const double z = 1.959963984540054;
  EXPECT_NEAR(zero.upper, z * z / (50.0 + z * z), 1e-12);

  // Symmetry: k successes and n-k failures mirror around 1/2.
  const campaign::Interval a = campaign::wilson_interval(20, 80);
  const campaign::Interval b = campaign::wilson_interval(60, 80);
  EXPECT_NEAR(a.lower, 1.0 - b.upper, 1e-12);
  EXPECT_NEAR(a.upper, 1.0 - b.lower, 1e-12);
}

TEST(ClopperPearson, MatchesKnownTableValues) {
  // k = 0, n = 200: upper bound is 1 - (alpha/2)^(1/n) ~ 0.01827 — the
  // "rule of three"-adjacent exact bound the CI smoke job relies on.
  const campaign::Interval zero = campaign::clopper_pearson_interval(0, 200);
  EXPECT_EQ(zero.lower, 0.0);
  EXPECT_NEAR(zero.upper, 1.0 - std::pow(0.025, 1.0 / 200.0), 1e-9);

  // k = 5, n = 100 at 95 %: published exact interval [0.0164, 0.1128].
  const campaign::Interval iv = campaign::clopper_pearson_interval(5, 100);
  EXPECT_NEAR(iv.lower, 0.0164, 5e-4);
  EXPECT_NEAR(iv.upper, 0.1128, 5e-4);

  // k = n mirrors k = 0.
  const campaign::Interval full =
      campaign::clopper_pearson_interval(200, 200);
  EXPECT_EQ(full.upper, 1.0);
  EXPECT_NEAR(full.lower, std::pow(0.025, 1.0 / 200.0), 1e-9);
}

TEST(ClopperPearson, CoversTheWilsonPointEstimate) {
  // Exact intervals are conservative: they contain the MLE and are no
  // tighter than Wilson at the extremes.
  for (const std::uint64_t k : {0u, 1u, 7u, 50u, 99u, 100u}) {
    const campaign::Interval cp =
        campaign::clopper_pearson_interval(k, 100);
    const double p = static_cast<double>(k) / 100.0;
    EXPECT_LE(cp.lower, p + 1e-12) << "k=" << k;
    EXPECT_GE(cp.upper, p - 1e-12) << "k=" << k;
    EXPECT_LE(cp.lower, cp.upper) << "k=" << k;
  }
}

TEST(IncompleteBeta, MatchesClosedForms) {
  // I_x(1, b) = 1 - (1-x)^b and I_x(a, 1) = x^a.
  EXPECT_NEAR(campaign::regularized_incomplete_beta(1.0, 4.0, 0.3),
              1.0 - std::pow(0.7, 4.0), 1e-12);
  EXPECT_NEAR(campaign::regularized_incomplete_beta(3.0, 1.0, 0.6),
              std::pow(0.6, 3.0), 1e-12);
  // Symmetry identity.
  EXPECT_NEAR(campaign::regularized_incomplete_beta(2.5, 4.5, 0.2),
              1.0 - campaign::regularized_incomplete_beta(4.5, 2.5, 0.8),
              1e-12);
}

TEST(Intervals, DegenerateAndInvalidInputs) {
  const campaign::Interval w = campaign::wilson_interval(0, 0);
  EXPECT_EQ(w.lower, 0.0);
  EXPECT_EQ(w.upper, 1.0);
  EXPECT_THROW(campaign::wilson_interval(5, 4), CheckError);
  EXPECT_THROW(campaign::clopper_pearson_interval(5, 4), CheckError);
  EXPECT_THROW(campaign::clopper_pearson_interval(1, 10, 1.5), CheckError);
}

// ------------------------------------------- synthetic property evaluation

/// A tiny 1-app campaign whose property outcomes are forced by predicates
/// over the seed-dependent result — here we instead drive the generic
/// machinery directly with synthetic SimResults through run_campaign's
/// verdict rules, using trivial simulations only as carriers.
campaign::CampaignConfig tiny_campaign(int runs, int batch) {
  campaign::CampaignConfig cfg;
  cfg.fleet.chip = exp::default_sim_config();
  cfg.fleet.chip.max_sim_time_s = 0.004;  // 4 epochs: cheap carrier runs
  cfg.fleet.chip_count = batch;
  cfg.runs = runs;
  cfg.first_seed = 10;
  return cfg;
}

std::vector<appmodel::AppArrival> tiny_workload() {
  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Compute;
  seq.app_count = 1;
  seq.inter_arrival_s = 0.001;
  seq.seed = 3;
  return appmodel::make_sequence(seq);
}

TEST(CampaignVerdict, CountsFailuresAndCapturesSeeds) {
  // "Fails on even seeds" — deterministic, seed-addressable outcomes.
  // The predicate sees per-run results; we reconstruct seeds from the
  // report's failing_seeds list.
  int calls = 0;
  campaign::PropertySpec parity;
  parity.name = "even_seed";
  parity.description = "fails every second run";
  parity.max_failure_probability = 1.0;
  parity.failed = [&calls](const sim::SimResult&) {
    return (calls++ % 2) == 0;
  };
  const campaign::CampaignReport report = campaign::run_campaign(
      tiny_campaign(10, 4), tiny_workload(), {parity});
  ASSERT_EQ(report.properties.size(), 1u);
  const campaign::PropertyResult& pr = report.properties[0];
  EXPECT_EQ(pr.runs, 10u);
  EXPECT_EQ(pr.failures, 5u);
  EXPECT_NEAR(pr.failure_rate, 0.5, 1e-12);
  // Runs are evaluated in seed order regardless of batch width, so the
  // failing seeds are the alternating ones starting at first_seed = 10.
  EXPECT_EQ(pr.failing_seeds,
            (std::vector<std::uint64_t>{10, 12, 14, 16, 18}));
  EXPECT_TRUE(pr.pass);  // bound 1.0 always passes
  EXPECT_TRUE(report.all_pass);
}

TEST(CampaignVerdict, BoundZeroDemandsZeroFailures) {
  campaign::PropertySpec never_fails;
  never_fails.name = "clean";
  never_fails.description = "never fails";
  never_fails.max_failure_probability = 0.0;
  never_fails.failed = [](const sim::SimResult&) { return false; };

  campaign::PropertySpec one_failure;
  one_failure.name = "single";
  one_failure.description = "fails exactly once";
  one_failure.max_failure_probability = 0.0;
  int calls = 0;
  one_failure.failed = [&calls](const sim::SimResult&) {
    return calls++ == 2;
  };

  const campaign::CampaignReport report = campaign::run_campaign(
      tiny_campaign(6, 3), tiny_workload(), {never_fails, one_failure});
  EXPECT_TRUE(report.properties[0].pass);
  EXPECT_EQ(report.properties[0].failures, 0u);
  // Wilson upper at k=0 is > 0, yet the property passes: bound 0 means
  // "zero observed failures", not "upper bound == 0".
  EXPECT_GT(report.properties[0].wilson.upper, 0.0);
  EXPECT_FALSE(report.properties[1].pass);
  EXPECT_EQ(report.properties[1].failures, 1u);
  EXPECT_EQ(report.properties[1].failing_seeds,
            (std::vector<std::uint64_t>{12}));
  EXPECT_FALSE(report.all_pass);
}

TEST(CampaignVerdict, WilsonUpperBoundGatesThePass) {
  campaign::PropertySpec rare;
  rare.name = "rare";
  rare.description = "fails once in eight";
  int calls = 0;
  rare.failed = [&calls](const sim::SimResult&) { return calls++ == 0; };
  // k=1, n=8 → Wilson 95 % upper ≈ 0.47; a bound of 0.4 must fail, a
  // bound of 0.6 must pass.
  rare.max_failure_probability = 0.4;
  campaign::CampaignReport tight = campaign::run_campaign(
      tiny_campaign(8, 8), tiny_workload(), {rare});
  EXPECT_FALSE(tight.properties[0].pass);

  calls = 0;
  rare.max_failure_probability = 0.6;
  campaign::CampaignReport loose = campaign::run_campaign(
      tiny_campaign(8, 8), tiny_workload(), {rare});
  EXPECT_TRUE(loose.properties[0].pass);
  EXPECT_EQ(tight.properties[0].wilson.upper,
            loose.properties[0].wilson.upper);
}

TEST(CampaignConfig, RejectsBadParameters) {
  campaign::CampaignConfig cfg = tiny_campaign(4, 2);
  cfg.runs = 0;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg = tiny_campaign(4, 2);
  cfg.confidence = 0.8;  // unsupported level
  EXPECT_THROW(cfg.validate(), CheckError);
  campaign::PropertySpec no_predicate;
  no_predicate.name = "empty";
  EXPECT_THROW(campaign::run_campaign(tiny_campaign(2, 2), tiny_workload(),
                                      {no_predicate}),
               CheckError);
  EXPECT_THROW(
      campaign::run_campaign(tiny_campaign(2, 2), tiny_workload(), {}),
      CheckError);
}

// ------------------------------------------------- end-to-end campaigns

campaign::CampaignConfig faulty_campaign(int runs, int batch, int threads) {
  campaign::CampaignConfig cfg;
  cfg.fleet.chip = exp::default_sim_config();
  cfg.fleet.chip.framework.mapping = "PARM";
  cfg.fleet.chip.framework.routing = "PANR";
  cfg.fleet.chip.max_sim_time_s = 0.020;
  cfg.fleet.chip.faults.enabled = true;
  cfg.fleet.chip.faults.random_link_failures = 2;
  cfg.fleet.chip.faults.random_fail_window_s = 0.015;
  cfg.fleet.chip.faults.repair_after_s = 0.005;
  cfg.fleet.chip.faults.sensor_dropout_per_epoch = 0.01;
  cfg.fleet.chip.faults.bit_error_psn_slope = 2e-3;
  cfg.fleet.chip_count = batch;
  cfg.fleet.threads = threads;
  cfg.runs = runs;
  cfg.first_seed = 1;
  return cfg;
}

std::vector<appmodel::AppArrival> faulty_workload() {
  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Mixed;
  seq.app_count = 3;
  seq.inter_arrival_s = 0.004;
  seq.seed = 5;
  return appmodel::make_sequence(seq);
}

std::vector<campaign::PropertySpec> standard_properties() {
  return {campaign::deadline_miss_property(1.0),
          campaign::no_deadlock_property(),
          campaign::delivery_floor_property(0.3, 1.0)};
}

TEST(CampaignRepeatability, ByteIdenticalAcrossThreadsAndBatching) {
  const std::string ref = campaign::report_to_json(campaign::run_campaign(
      faulty_campaign(12, 4, 0), faulty_workload(), standard_properties()));
  const std::string serial = campaign::report_to_json(campaign::run_campaign(
      faulty_campaign(12, 4, 1), faulty_workload(), standard_properties()));
  const std::string threads3 =
      campaign::report_to_json(campaign::run_campaign(
          faulty_campaign(12, 4, 3), faulty_workload(),
          standard_properties()));
  const std::string batch5 = campaign::report_to_json(campaign::run_campaign(
      faulty_campaign(12, 5, 0), faulty_workload(), standard_properties()));
  EXPECT_EQ(ref, serial);
  EXPECT_EQ(ref, threads3);
  EXPECT_EQ(ref, batch5);
}

TEST(CampaignReportFormats, JsonAndTextAreWellFormed) {
  const campaign::CampaignReport report = campaign::run_campaign(
      faulty_campaign(6, 3, 0), faulty_workload(), standard_properties());
  const std::string json = campaign::report_to_json(report);
  // Structural smoke: key markers present, braces/brackets balanced.
  EXPECT_NE(json.find("\"campaign\""), std::string::npos);
  EXPECT_NE(json.find("\"properties\""), std::string::npos);
  EXPECT_NE(json.find("\"wilson\""), std::string::npos);
  EXPECT_NE(json.find("\"clopper_pearson\""), std::string::npos);
  EXPECT_NE(json.find("\"aggregates\""), std::string::npos);
  EXPECT_NE(json.find("\"no_deadlock\""), std::string::npos);
  int depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  const std::string text = campaign::report_to_text(report);
  EXPECT_NE(text.find("VERDICT:"), std::string::npos);
  EXPECT_NE(text.find("no_deadlock"), std::string::npos);
}

}  // namespace
}  // namespace parm
