// Tests for the chip-level (shared-rail) PDN model.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "pdn/chip_pdn.hpp"
#include "power/technology.hpp"

namespace parm::pdn {
namespace {

const power::TechnologyNode& tech7() {
  return power::technology_node(7);
}

std::vector<std::array<TileLoad, 4>> aggressor_victims(int domains) {
  std::vector<std::array<TileLoad, 4>> loads(
      static_cast<std::size_t>(domains));
  for (std::size_t k = 0; k < 4; ++k) {
    loads[0][k] = {0.35, 0.75, 0.0};
    for (std::size_t d = 1; d < loads.size(); ++d) {
      loads[d][k] = {0.12, 0.35, 0.3};
    }
  }
  return loads;
}

TEST(ChipPdn, ZeroRailMatchesIsolatedDomains) {
  // With no shared impedance, each domain of the chip solve must agree
  // with the standalone per-domain estimator (the regression identity).
  const ChipPdnModel chip(tech7(), 3, PackageRail{0.0, 0.0});
  const auto loads = aggressor_victims(3);
  const ChipPsn chip_psn = chip.estimate(0.4, loads);

  const PsnEstimator isolated(tech7());
  for (std::size_t d = 0; d < 3; ++d) {
    const DomainPsn alone = isolated.estimate(0.4, loads[d]);
    EXPECT_NEAR(chip_psn.domains[d].peak_percent, alone.peak_percent,
                0.05)
        << "domain " << d;
    EXPECT_NEAR(chip_psn.domains[d].avg_percent, alone.avg_percent, 0.05);
  }
}

TEST(ChipPdn, SharedRailCouplesAggressorIntoVictims) {
  const auto loads = aggressor_victims(4);
  const ChipPdnModel ideal(tech7(), 4, PackageRail{0.0, 0.0});
  const ChipPdnModel shared(tech7(), 4, PackageRail{1e-3, 6e-12});
  const ChipPsn p_ideal = ideal.estimate(0.4, loads);
  const ChipPsn p_shared = shared.estimate(0.4, loads);
  // Victims get measurably noisier through the shared rail.
  for (std::size_t d = 1; d < 4; ++d) {
    EXPECT_GT(p_shared.domains[d].peak_percent,
              p_ideal.domains[d].peak_percent * 1.3)
        << "victim domain " << d;
  }
  // The aggressor also sees its own rail drop.
  EXPECT_GT(p_shared.domains[0].peak_percent,
            p_ideal.domains[0].peak_percent);
}

TEST(ChipPdn, CouplingGrowsWithRailImpedance) {
  const auto loads = aggressor_victims(4);
  double prev = 0.0;
  for (double scale : {0.25, 0.5, 1.0, 2.0}) {
    const ChipPdnModel chip(
        tech7(), 4, PackageRail{scale * 1e-3, scale * 6e-12});
    const ChipPsn psn = chip.estimate(0.4, loads);
    const double victim = psn.domains[1].peak_percent;
    EXPECT_GT(victim, prev);
    prev = victim;
  }
}

TEST(ChipPdn, Validation) {
  EXPECT_THROW(ChipPdnModel(tech7(), 0, PackageRail{}), CheckError);
  EXPECT_THROW(ChipPdnModel(tech7(), 2, PackageRail{-1.0, 0.0}),
               CheckError);
  const ChipPdnModel chip(tech7(), 2, PackageRail{});
  EXPECT_THROW(chip.estimate(0.4, aggressor_victims(3)), CheckError);
  EXPECT_THROW(chip.estimate(-1.0, aggressor_victims(2)), CheckError);
}

TEST(ChipPdn, SingleDomainChipWorks) {
  const ChipPdnModel chip(tech7(), 1, PackageRail{});
  std::vector<std::array<TileLoad, 4>> loads(1);
  loads[0][0] = {0.3, 0.6, 0.0};
  const ChipPsn psn = chip.estimate(0.4, loads);
  EXPECT_GT(psn.peak_percent, 0.0);
  EXPECT_EQ(psn.domains.size(), 1u);
}

}  // namespace
}  // namespace parm::pdn
