// Unit tests for parm_cmp: platform occupancy, domain DVS bookkeeping,
// dark-silicon ledger integration, and PSN sensors.
#include <gtest/gtest.h>

#include "cmp/platform.hpp"
#include "common/check.hpp"

namespace parm::cmp {
namespace {

Platform make_platform() { return Platform(PlatformConfig{}); }

TEST(Platform, PaperDefaults) {
  const Platform p = make_platform();
  EXPECT_EQ(p.mesh().tile_count(), 60);
  EXPECT_EQ(p.mesh().domain_count(), 15);
  EXPECT_EQ(p.technology().feature_nm, 7);
  EXPECT_DOUBLE_EQ(p.ledger().budget(), 65.0);
  EXPECT_EQ(p.config().vdd_levels.size(), 5u);
  EXPECT_EQ(p.free_tile_count(), 60);
  EXPECT_EQ(p.free_domain_count(), 15);
}

TEST(Platform, OccupyAndRelease) {
  Platform p = make_platform();
  const auto tiles = p.mesh().domain_tiles(3);
  std::vector<Platform::Placement> places;
  for (int i = 0; i < 4; ++i) {
    places.push_back({i, tiles[static_cast<std::size_t>(i)], 0.7});
  }
  p.occupy(1, places, 0.5);
  EXPECT_EQ(p.free_tile_count(), 56);
  EXPECT_FALSE(p.domain_free(3));
  EXPECT_EQ(p.domain_vdd(3), 0.5);
  EXPECT_EQ(p.tile(tiles[0]).app, 1);
  EXPECT_EQ(p.tile(tiles[0]).task_index, 0);
  EXPECT_EQ(p.tiles_of(1).size(), 4u);

  p.release(1);
  EXPECT_EQ(p.free_tile_count(), 60);
  EXPECT_TRUE(p.domain_free(3));
  EXPECT_FALSE(p.domain_vdd(3).has_value());  // power-gated again
}

TEST(Platform, RejectsDoubleOccupancy) {
  Platform p = make_platform();
  p.occupy(1, {{0, 0, 0.5}}, 0.4);
  EXPECT_THROW(p.occupy(2, {{0, 0, 0.5}}, 0.4), CheckError);
}

TEST(Platform, RejectsMixedVddInOneDomain) {
  Platform p = make_platform();
  const auto tiles = p.mesh().domain_tiles(0);
  p.occupy(1, {{0, tiles[0], 0.5}}, 0.4);
  // Same domain, different supply → contract violation.
  EXPECT_THROW(p.occupy(2, {{0, tiles[1], 0.5}}, 0.6), CheckError);
  // Same supply is allowed (HM-style domain sharing).
  p.occupy(2, {{0, tiles[1], 0.5}}, 0.4);
  EXPECT_EQ(p.domain_vdd(0), 0.4);
}

TEST(Platform, PartialReleaseKeepsDomainPowered) {
  Platform p = make_platform();
  const auto tiles = p.mesh().domain_tiles(0);
  p.occupy(1, {{0, tiles[0], 0.5}}, 0.4);
  p.occupy(2, {{0, tiles[1], 0.5}}, 0.4);
  p.release(1);
  EXPECT_EQ(p.domain_vdd(0), 0.4);  // app 2 still there
  p.release(2);
  EXPECT_FALSE(p.domain_vdd(0).has_value());
}

TEST(Platform, RejectsNonLevelVdd) {
  Platform p = make_platform();
  EXPECT_THROW(p.occupy(1, {{0, 0, 0.5}}, 0.45), CheckError);
}

TEST(Platform, RejectsDuplicateTilesInRequest) {
  Platform p = make_platform();
  EXPECT_THROW(p.occupy(1, {{0, 5, 0.5}, {1, 5, 0.5}}, 0.4), CheckError);
}

TEST(Platform, OccupyIsAtomicOnFailure) {
  Platform p = make_platform();
  p.occupy(1, {{0, 7, 0.5}}, 0.4);
  // Second placement in the request collides → nothing must be committed.
  EXPECT_THROW(p.occupy(2, {{0, 6, 0.5}, {1, 7, 0.5}}, 0.4), CheckError);
  EXPECT_TRUE(p.tile_free(6));
}

TEST(Platform, FreeDomainEnumeration) {
  Platform p = make_platform();
  const auto tiles = p.mesh().domain_tiles(7);
  p.occupy(1, {{0, tiles[2], 0.9}}, 0.4);
  const auto free = p.free_domains();
  EXPECT_EQ(free.size(), 14u);
  EXPECT_EQ(std::count(free.begin(), free.end(), 7), 0);
}

TEST(Platform, SensorsRoundTripAndEmergencyFlag) {
  Platform p = make_platform();
  std::vector<double> psn(60, 1.0);
  psn[13] = 6.5;
  p.set_tile_psn(psn);
  EXPECT_DOUBLE_EQ(p.tile_psn_of(13), 6.5);
  EXPECT_TRUE(p.in_emergency(13));
  EXPECT_FALSE(p.in_emergency(12));
  EXPECT_THROW(p.set_tile_psn(std::vector<double>(59, 0.0)), CheckError);
}

TEST(Platform, MigrateMovesTaskAndRepowersDomains) {
  Platform p = make_platform();
  const auto from_tiles = p.mesh().domain_tiles(0);
  p.occupy(1, {{0, from_tiles[0], 0.9}}, 0.4);
  const auto to_tiles = p.mesh().domain_tiles(5);

  p.migrate(1, from_tiles[0], to_tiles[2]);
  EXPECT_TRUE(p.tile_free(from_tiles[0]));
  EXPECT_EQ(p.tile(to_tiles[2]).app, 1);
  EXPECT_EQ(p.tile(to_tiles[2]).task_index, 0);
  EXPECT_DOUBLE_EQ(p.tile(to_tiles[2]).activity, 0.9);
  // Source domain power-gated, target powered at the app's Vdd.
  EXPECT_FALSE(p.domain_vdd(0).has_value());
  EXPECT_EQ(p.domain_vdd(5), 0.4);
}

TEST(Platform, MigratePreconditions) {
  Platform p = make_platform();
  p.occupy(1, {{0, 0, 0.9}}, 0.4);
  p.occupy(2, {{0, 8, 0.9}}, 0.5);
  // Not the owner.
  EXPECT_THROW(p.migrate(2, 0, 1), CheckError);
  // Target occupied.
  EXPECT_THROW(p.migrate(1, 0, 8), CheckError);
  // Target domain powered at a different Vdd (tile 9 shares app 2's
  // domain at 0.5 V; app 1 runs at 0.4 V).
  EXPECT_THROW(p.migrate(1, 0, 9), CheckError);
  // Valid move within a compatible domain.
  p.migrate(1, 0, 1);
  EXPECT_EQ(p.tile(1).app, 1);
}

TEST(Platform, ReleaseOfUnknownAppIsNoop) {
  Platform p = make_platform();
  p.release(99);
  EXPECT_EQ(p.free_tile_count(), 60);
}

TEST(Platform, ConfigValidation) {
  PlatformConfig bad;
  bad.vdd_levels = {0.8, 0.4};  // unsorted
  EXPECT_THROW(Platform{bad}, CheckError);
  PlatformConfig below;
  below.vdd_levels = {0.1};  // below Vth
  EXPECT_THROW(Platform{below}, CheckError);
}

}  // namespace
}  // namespace parm::cmp
