// Unit tests for parm_common: geometry, RNG, statistics, tables.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace parm {
namespace {

// ---------------------------------------------------------------- geometry

TEST(Geometry, TileIdRoundTrip) {
  const MeshGeometry mesh(10, 6);
  EXPECT_EQ(mesh.tile_count(), 60);
  for (TileId t = 0; t < mesh.tile_count(); ++t) {
    EXPECT_EQ(mesh.tile_id(mesh.coord(t)), t);
  }
}

TEST(Geometry, RejectsOddDimensions) {
  EXPECT_THROW(MeshGeometry(9, 6), CheckError);
  EXPECT_THROW(MeshGeometry(10, 5), CheckError);
  EXPECT_THROW(MeshGeometry(0, 6), CheckError);
}

TEST(Geometry, DomainCountAndMembership) {
  const MeshGeometry mesh(10, 6);
  EXPECT_EQ(mesh.domain_count(), 15);
  // Every tile belongs to exactly one domain; each domain has 4 tiles.
  std::vector<int> seen(static_cast<std::size_t>(mesh.tile_count()), 0);
  for (DomainId d = 0; d < mesh.domain_count(); ++d) {
    const auto tiles = mesh.domain_tiles(d);
    for (TileId t : tiles) {
      EXPECT_EQ(mesh.domain_of(t), d);
      ++seen[static_cast<std::size_t>(t)];
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Geometry, DomainTilesAreA2x2Block) {
  const MeshGeometry mesh(10, 6);
  for (DomainId d = 0; d < mesh.domain_count(); ++d) {
    const auto tiles = mesh.domain_tiles(d);
    // Slots: 0=SW, 1=SE, 2=NW, 3=NE.
    EXPECT_EQ(mesh.hop_distance(tiles[0], tiles[1]), 1);
    EXPECT_EQ(mesh.hop_distance(tiles[0], tiles[2]), 1);
    EXPECT_EQ(mesh.hop_distance(tiles[1], tiles[3]), 1);
    EXPECT_EQ(mesh.hop_distance(tiles[2], tiles[3]), 1);
    EXPECT_EQ(mesh.hop_distance(tiles[0], tiles[3]), 2);
    EXPECT_EQ(mesh.hop_distance(tiles[1], tiles[2]), 2);
  }
}

TEST(Geometry, NeighborsRespectEdges) {
  const MeshGeometry mesh(4, 4);
  // Corner (0,0): only east + north.
  const TileId corner = mesh.tile_id({0, 0});
  EXPECT_EQ(mesh.neighbor(corner, Direction::West), kInvalidTile);
  EXPECT_EQ(mesh.neighbor(corner, Direction::South), kInvalidTile);
  EXPECT_EQ(mesh.neighbors(corner).size(), 2u);
  // Interior tile has 4 neighbors.
  EXPECT_EQ(mesh.neighbors(mesh.tile_id({1, 1})).size(), 4u);
}

TEST(Geometry, NeighborIsOneHopAway) {
  const MeshGeometry mesh(6, 6);
  for (TileId t = 0; t < mesh.tile_count(); ++t) {
    for (Direction d : kCardinalDirections) {
      const TileId n = mesh.neighbor(t, d);
      if (n != kInvalidTile) {
        EXPECT_EQ(mesh.hop_distance(t, n), 1);
        EXPECT_EQ(mesh.neighbor(n, opposite(d)), t);
      }
    }
  }
}

TEST(Geometry, ProductiveDirectionsMakeProgress) {
  const MeshGeometry mesh(8, 6);
  const TileCoord src{3, 2};
  for (TileId t = 0; t < mesh.tile_count(); ++t) {
    const TileCoord dst = mesh.coord(t);
    const auto dirs = mesh.productive_directions(src, dst);
    if (src == dst) {
      EXPECT_TRUE(dirs.empty());
      continue;
    }
    EXPECT_FALSE(dirs.empty());
    for (Direction d : dirs) {
      const TileId n = mesh.neighbor(mesh.tile_id(src), d);
      ASSERT_NE(n, kInvalidTile);
      EXPECT_LT(manhattan_distance(mesh.coord(n), dst),
                manhattan_distance(src, dst));
    }
  }
}

TEST(Geometry, ManhattanDistanceProperties) {
  EXPECT_EQ(manhattan_distance({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan_distance({2, 2}, {2, 2}), 0);
  EXPECT_EQ(manhattan_distance({5, 1}, {1, 5}), 8);
}

TEST(Geometry, DomainDistance) {
  const MeshGeometry mesh(10, 6);
  EXPECT_EQ(mesh.domain_distance(0, 0), 0);
  // Domain grid is 5x3; domains 0 and 4 sit at opposite row ends.
  EXPECT_EQ(mesh.domain_distance(0, 4), 4);
  EXPECT_EQ(mesh.domain_distance(0, 14), 4 + 2);
}

TEST(Direction, OppositeIsInvolution) {
  for (Direction d : kCardinalDirections) {
    EXPECT_EQ(opposite(opposite(d)), d);
    EXPECT_NE(opposite(d), d);
  }
  EXPECT_EQ(opposite(Direction::Local), Direction::Local);
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NextBelowIsUnbiasedAcrossBuckets) {
  Rng rng(99);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100000; ++i) ++buckets[rng.next_below(10)];
  for (int b : buckets) EXPECT_NEAR(b, 10000, 500);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  RunningStats st;
  for (int i = 0; i < 50000; ++i) st.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(st.mean(), 2.0, 0.1);
  EXPECT_NEAR(st.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 50000; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / 50000, 0.25, 0.01);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The child stream must not mirror the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == child.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), CheckError);
  EXPECT_THROW(rng.uniform_int(3, 1), CheckError);
  EXPECT_THROW(rng.exponential(0.0), CheckError);
  EXPECT_THROW(rng.bernoulli(1.5), CheckError);
  EXPECT_THROW(rng.pick_index(0), CheckError);
}

// ------------------------------------------------------------------ stats

TEST(RunningStats, KnownSequence) {
  RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
  EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(21);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal();
    if (i % 2 == 0) {
      a.add(x);
    } else {
      b.add(x);
    }
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats st;
  EXPECT_TRUE(st.empty());
  EXPECT_EQ(st.mean(), 0.0);
  EXPECT_EQ(st.variance(), 0.0);
}

// ------------------------------------------------------------------ table

TEST(Table, AlignsAndFormats) {
  Table t({"name", "value"});
  t.set_precision(2);
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), std::int64_t{42}});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({std::string("x,y"), std::string("he said \"hi\"")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RowWidthChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only one")}), CheckError);
}

// ------------------------------------------------------------------ units

TEST(Units, CycleConversions) {
  EXPECT_EQ(units::seconds_to_ref_cycles(1e-3), 1000000u);
  EXPECT_DOUBLE_EQ(units::ref_cycles_to_seconds(2000000000ull), 2.0);
}

}  // namespace
}  // namespace parm
