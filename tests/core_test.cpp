// Unit tests for parm_core: Algorithm-1 Vdd/DoP selection, the HM fixed
// policy, the FCFS service queue, and the framework factory.
#include <gtest/gtest.h>

#include "appmodel/workload.hpp"
#include "common/check.hpp"
#include "core/admission.hpp"
#include "core/framework.hpp"
#include "core/service_queue.hpp"

namespace parm::core {
namespace {

using appmodel::AppArrival;
using cmp::Platform;
using cmp::PlatformConfig;

AppArrival make_arrival(const char* bench, double arrival, double deadline,
                        std::uint64_t seed = 7, int id = 0) {
  AppArrival a;
  a.id = id;
  a.bench = &appmodel::benchmark_by_name(bench);
  a.profile = std::make_shared<appmodel::ApplicationProfile>(*a.bench, seed);
  a.arrival_s = arrival;
  a.deadline_s = deadline;
  return a;
}

// -------------------------------------------------------- PARM Algorithm 1

TEST(ParmAdmission, PicksLowestVddWithGenerousDeadline) {
  Platform platform{PlatformConfig{}};
  ParmAdmissionPolicy policy;
  const auto app = make_arrival("fft", 0.0, 100.0);  // deadline far away
  const auto r = policy.try_admit(app, 0.0, platform);
  ASSERT_TRUE(r.admitted());
  EXPECT_DOUBLE_EQ(r.decision->vdd, 0.4);  // lowest DVS level
  EXPECT_EQ(r.decision->dop, app.bench->max_dop);  // highest DoP first
  EXPECT_GT(r.decision->estimated_power_w, 0.0);
  EXPECT_LT(r.decision->wcet_s, 100.0);
}

TEST(ParmAdmission, RaisesVddWhenDeadlineTight) {
  Platform platform{PlatformConfig{}};
  ParmAdmissionPolicy policy;
  const power::VoltageFrequencyModel& vf = platform.vf_model();
  const auto probe = make_arrival("fft", 0.0, 1.0);
  const int dmax = probe.bench->max_dop;
  // Deadline between WCET(0.6) and WCET(0.5) at max DoP forces 0.6 V.
  const double w05 = probe.profile->wcet_seconds(0.5, dmax, vf);
  const double w06 = probe.profile->wcet_seconds(0.6, dmax, vf);
  const auto app = make_arrival("fft", 0.0, (w05 + w06) / 2.0);
  const auto r = policy.try_admit(app, 0.0, platform);
  ASSERT_TRUE(r.admitted());
  EXPECT_DOUBLE_EQ(r.decision->vdd, 0.6);
}

TEST(ParmAdmission, DropsWhenNoOperatingPointMeetsDeadline) {
  Platform platform{PlatformConfig{}};
  ParmAdmissionPolicy policy;
  const auto app = make_arrival("fft", 0.0, 1e-6);  // hopeless deadline
  const auto r = policy.try_admit(app, 0.0, platform);
  ASSERT_FALSE(r.admitted());
  EXPECT_EQ(r.failure, AdmissionFailure::Drop);
}

TEST(ParmAdmission, StallsWhenResourcesMissing) {
  Platform platform{PlatformConfig{}};
  // Occupy every domain so no mapping can succeed.
  for (DomainId d = 0; d < platform.mesh().domain_count(); ++d) {
    const auto tiles = platform.mesh().domain_tiles(d);
    platform.occupy(100 + d, {{0, tiles[0], 0.5}}, 0.4);
  }
  ParmAdmissionPolicy policy;
  const auto app = make_arrival("fft", 0.0, 100.0);
  const auto r = policy.try_admit(app, 0.0, platform);
  ASSERT_FALSE(r.admitted());
  EXPECT_EQ(r.failure, AdmissionFailure::Stall);
}

TEST(ParmAdmission, LowersDopWhenDomainsScarce) {
  Platform platform{PlatformConfig{}};
  // Leave only 2 domains free: an app whose max DoP needs more clusters
  // must fall back to 8 tasks (2 clusters).
  for (DomainId d = 0; d < 13; ++d) {
    const auto tiles = platform.mesh().domain_tiles(d);
    platform.occupy(100 + d, {{0, tiles[0], 0.5}}, 0.4);
  }
  ParmAdmissionPolicy policy;
  const auto app = make_arrival("fft", 0.0, 100.0);  // max_dop = 32
  const auto r = policy.try_admit(app, 0.0, platform);
  ASSERT_TRUE(r.admitted());
  EXPECT_EQ(r.decision->dop, 8);
  EXPECT_DOUBLE_EQ(r.decision->vdd, 0.4);  // Vdd stays minimal
}

TEST(ParmAdmission, RespectsPowerBudget) {
  PlatformConfig cfg;
  cfg.dark_silicon_budget_w = 0.2;  // absurdly tight budget
  Platform platform{cfg};
  ParmAdmissionPolicy policy;
  const auto app = make_arrival("swaptions", 0.0, 100.0);
  const auto r = policy.try_admit(app, 0.0, platform);
  // Even DoP 4 at 0.4 V needs more than 0.5 W for a compute app.
  ASSERT_FALSE(r.admitted());
}

TEST(ParmAdmission, FixedVddAblation) {
  Platform platform{PlatformConfig{}};
  ParmAdmissionPolicy::Options opts;
  opts.adapt_vdd = false;
  opts.fixed_vdd = 0.7;
  ParmAdmissionPolicy policy(opts);
  const auto app = make_arrival("fft", 0.0, 100.0);
  const auto r = policy.try_admit(app, 0.0, platform);
  ASSERT_TRUE(r.admitted());
  EXPECT_DOUBLE_EQ(r.decision->vdd, 0.7);
}

TEST(ParmAdmission, MappingIsValidAndCommittable) {
  Platform platform{PlatformConfig{}};
  ParmAdmissionPolicy policy;
  const auto app = make_arrival("cholesky", 0.0, 100.0);
  const auto r = policy.try_admit(app, 0.0, platform);
  ASSERT_TRUE(r.admitted());
  EXPECT_TRUE(mapping::validate_mapping(
      platform, app.profile->variant(r.decision->dop), r.decision->mapping));
  // Committing must succeed end to end.
  ASSERT_TRUE(platform.ledger().reserve(1, r.decision->estimated_power_w));
  platform.occupy(1, r.decision->mapping, r.decision->vdd);
  EXPECT_EQ(platform.tiles_of(1).size(),
            static_cast<std::size_t>(r.decision->dop));
}

// ---------------------------------------------------------------- HM policy

TEST(HmAdmission, UsesFixedOperatingPoint) {
  Platform platform{PlatformConfig{}};
  HmAdmissionPolicy policy(0.8, 16);
  const auto app = make_arrival("fft", 0.0, 100.0);
  const auto r = policy.try_admit(app, 0.0, platform);
  ASSERT_TRUE(r.admitted());
  EXPECT_DOUBLE_EQ(r.decision->vdd, 0.8);
  EXPECT_EQ(r.decision->dop, 16);
}

TEST(HmAdmission, ClampsDopToAppMaximum) {
  Platform platform{PlatformConfig{}};
  HmAdmissionPolicy policy(0.8, 16);
  const auto app = make_arrival("dedup", 0.0, 100.0);  // max_dop = 12
  const auto r = policy.try_admit(app, 0.0, platform);
  ASSERT_TRUE(r.admitted());
  EXPECT_EQ(r.decision->dop, 12);
}

TEST(HmAdmission, DropsOnImpossibleDeadlineStallsOnResources) {
  Platform platform{PlatformConfig{}};
  HmAdmissionPolicy policy(0.8, 16);
  const auto hopeless = make_arrival("fft", 0.0, 1e-6);
  EXPECT_EQ(policy.try_admit(hopeless, 0.0, platform).failure,
            AdmissionFailure::Drop);
  // Fill the chip.
  std::vector<Platform::Placement> filler;
  for (TileId t = 0; t < 50; ++t) filler.push_back({0, t, 0.5});
  platform.occupy(1, filler, 0.8);
  const auto ok = make_arrival("fft", 0.0, 100.0);
  EXPECT_EQ(policy.try_admit(ok, 0.0, platform).failure,
            AdmissionFailure::Stall);
}

TEST(HmAdmission, ValidatesConstruction) {
  EXPECT_THROW(HmAdmissionPolicy(0.8, 10), CheckError);  // not multiple of 4
  EXPECT_THROW(HmAdmissionPolicy(-1.0, 16), CheckError);
}

// ------------------------------------------------------------ service queue

TEST(ServiceQueue, FcfsAdmissionOrder) {
  Platform platform{PlatformConfig{}};
  ParmAdmissionPolicy policy;
  ServiceQueue q;
  q.enqueue(make_arrival("fft", 0.0, 100.0, 1, 0));
  q.enqueue(make_arrival("radix", 0.0, 100.0, 2, 1));
  auto first = q.pump(0.0, platform, policy);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->app.id, 0);
  // Caller must commit before pumping again; commit then continue.
  platform.ledger().reserve(1, first->decision.estimated_power_w);
  platform.occupy(1, first->decision.mapping, first->decision.vdd);
  auto second = q.pump(0.0, platform, policy);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->app.id, 1);
  EXPECT_TRUE(q.empty());
}

TEST(ServiceQueue, HeadOfLineBlocksOnStall) {
  Platform platform{PlatformConfig{}};
  // Fill all domains so everything stalls.
  for (DomainId d = 0; d < platform.mesh().domain_count(); ++d) {
    const auto tiles = platform.mesh().domain_tiles(d);
    platform.occupy(100 + d, {{0, tiles[0], 0.5}}, 0.4);
  }
  ParmAdmissionPolicy policy;
  ServiceQueue q(/*max_stalls=*/2);
  q.enqueue(make_arrival("fft", 0.0, 100.0, 1, 0));
  q.enqueue(make_arrival("radix", 0.0, 100.0, 2, 1));
  EXPECT_FALSE(q.pump(0.0, platform, policy).has_value());
  EXPECT_EQ(q.size(), 2u);  // head stalled, line blocked
  EXPECT_FALSE(q.pump(0.0, platform, policy).has_value());
  // Third failed attempt exceeds max_stalls=2 → head dropped; the next
  // app stalls in turn (and records its first stall).
  EXPECT_FALSE(q.pump(0.0, platform, policy).has_value());
  EXPECT_EQ(q.dropped().size(), 1u);
  EXPECT_EQ(q.dropped()[0].id, 0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(ServiceQueue, DeadlineInfeasibleDroppedImmediately) {
  Platform platform{PlatformConfig{}};
  ParmAdmissionPolicy policy;
  ServiceQueue q;
  q.enqueue(make_arrival("fft", 0.0, 1e-6, 1, 0));   // hopeless
  q.enqueue(make_arrival("radix", 0.0, 100.0, 2, 1));  // fine
  auto adm = q.pump(0.0, platform, policy);
  ASSERT_TRUE(adm.has_value());  // the hopeless head was dropped, radix in
  EXPECT_EQ(adm->app.id, 1);
  EXPECT_EQ(q.dropped().size(), 1u);
}

TEST(ServiceQueue, ValidatesMaxStalls) {
  EXPECT_THROW(ServiceQueue(0), CheckError);
}

// ---------------------------------------------------------------- framework

TEST(Framework, FactoryBuildsAllSixPaperConfigs) {
  const auto frameworks = paper_frameworks();
  ASSERT_EQ(frameworks.size(), 6u);
  EXPECT_EQ(frameworks[0].display_name(), "HM+XY");
  EXPECT_EQ(frameworks[5].display_name(), "PARM+PANR");
  for (const auto& cfg : frameworks) {
    const auto policy = make_admission_policy(cfg);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), cfg.mapping);
  }
}

TEST(Framework, UnknownMappingThrows) {
  FrameworkConfig cfg;
  cfg.mapping = "MAGIC";
  EXPECT_THROW(make_admission_policy(cfg), CheckError);
}

}  // namespace
}  // namespace parm::core
