// Phase-pipeline equivalence suite: the decomposed epoch-phase engine
// must reproduce, bit for bit, what the monolithic simulator produced for
// the same seeds — straight runs, snapshot/resume runs, and the
// parallel-PSN path (the golden seed-42 digest in golden_trace_test pins
// the absolute values; this suite pins the cross-path invariants). It
// also checks the instance-scoping contract: concurrent simulators keep
// fully independent metric registries.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>

#include "exp/experiments.hpp"
#include "obs/metrics.hpp"
#include "sim/system_sim.hpp"
#include "sim_result_compare.hpp"

namespace parm::sim {
namespace {

appmodel::SequenceConfig small_sequence(std::uint64_t seed) {
  appmodel::SequenceConfig cfg;
  cfg.kind = appmodel::SequenceKind::Mixed;
  cfg.app_count = 4;
  cfg.inter_arrival_s = 0.05;
  cfg.seed = seed;
  return cfg;
}

SimConfig engine_cfg() {
  SimConfig cfg = exp::default_sim_config();
  cfg.framework.mapping = "PARM";
  cfg.framework.routing = "PANR";
  cfg.record_telemetry = true;
  return cfg;
}

TEST(EngineEquivalence, RepeatedRunsAreBitIdentical) {
  const auto seq = appmodel::make_sequence(small_sequence(42));
  SystemSimulator a(engine_cfg(), seq);
  SystemSimulator b(engine_cfg(), seq);
  const SimResult ra = a.run();
  const SimResult rb = b.run();
  expect_identical(ra, rb);
}

TEST(EngineEquivalence, SnapshotResumeMatchesStraightRun) {
  const auto seq = appmodel::make_sequence(small_sequence(42));
  SystemSimulator straight(engine_cfg(), seq);
  const SimResult r_straight = straight.run();

  const auto dir = std::filesystem::temp_directory_path() /
                   "parm_engine_equivalence_test";
  std::filesystem::create_directories(dir);
  // Snapshot mid-run via the periodic hook, then resume in a fresh
  // engine: every phase's save/restore section must reconstruct its
  // state exactly, including the telemetry watermarks.
  SystemSimulator first(engine_cfg(), seq);
  first.enable_periodic_snapshots(40, dir.string());
  (void)first.run();
  const auto snap = dir / "epoch_40.parmsnap";
  ASSERT_TRUE(std::filesystem::exists(snap));

  SystemSimulator resumed(engine_cfg(), seq);
  resumed.restore_snapshot(snap.string());
  EXPECT_EQ(resumed.epoch(), 40u);
  const SimResult r_resumed = resumed.run();
  expect_identical(r_straight, r_resumed);
  std::filesystem::remove_all(dir);
}

TEST(EngineEquivalence, FlightRecorderOnAndOffAreBitIdentical) {
  // The flight recorder is observe-only: enabling it (at any capacity,
  // including one small enough to wrap) must not perturb the run. The
  // golden seed-42 digest pins the absolute values; this pins the
  // recorder-on/off invariant.
  const auto seq = appmodel::make_sequence(small_sequence(42));
  SimConfig off = engine_cfg();
  SimConfig on = engine_cfg();
  on.record_events = true;
  SimConfig wrapping = engine_cfg();
  wrapping.record_events = true;
  wrapping.events_capacity = 8;  // forces ring wrap + drop accounting

  SystemSimulator a(off, seq);
  SystemSimulator b(on, seq);
  SystemSimulator c(wrapping, seq);
  const SimResult ra = a.run();
  const SimResult rb = b.run();
  const SimResult rc = c.run();
  expect_identical(ra, rb);
  expect_identical(ra, rc);

  // Sanity: the enabled recorders actually captured the run.
  EXPECT_EQ(a.recorder().emitted(), 0u);
  EXPECT_GT(b.recorder().emitted(), 0u);
  EXPECT_EQ(b.recorder().emitted(), c.recorder().emitted());
  EXPECT_LE(c.recorder().size(), 8u);
  // The engine emits from serial phase code, so the event stream itself
  // is deterministic: same seqs, times, and types across repeats.
  SystemSimulator b2(on, seq);
  (void)b2.run();
  const auto eb = b.recorder().collect();
  const auto eb2 = b2.recorder().collect();
  ASSERT_EQ(eb.size(), eb2.size());
  for (std::size_t i = 0; i < eb.size(); ++i) {
    EXPECT_EQ(eb[i].seq, eb2[i].seq);
    EXPECT_EQ(eb[i].type, eb2[i].type);
    EXPECT_DOUBLE_EQ(eb[i].t, eb2[i].t);
    EXPECT_EQ(eb[i].app, eb2[i].app);
  }
}

TEST(EngineEquivalence, SnapshotFromEventlessRunResumesWithEventsOn) {
  // Recorder state is deliberately not snapshotted and the config
  // fingerprint excludes the event fields: a snapshot taken without
  // events must resume bit-identically with events enabled.
  const auto seq = appmodel::make_sequence(small_sequence(42));
  SystemSimulator straight(engine_cfg(), seq);
  const SimResult r_straight = straight.run();

  const auto dir = std::filesystem::temp_directory_path() /
                   "parm_engine_equivalence_events_test";
  std::filesystem::create_directories(dir);
  SystemSimulator first(engine_cfg(), seq);
  first.enable_periodic_snapshots(40, dir.string());
  (void)first.run();
  const auto snap = dir / "epoch_40.parmsnap";
  ASSERT_TRUE(std::filesystem::exists(snap));

  SimConfig with_events = engine_cfg();
  with_events.record_events = true;
  SystemSimulator resumed(with_events, seq);
  resumed.restore_snapshot(snap.string());
  const SimResult r_resumed = resumed.run();
  expect_identical(r_straight, r_resumed);
  // The resumed run recorded only its own half of the timeline.
  EXPECT_GT(resumed.recorder().emitted(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(EngineEquivalence, TimeseriesOnAndOffAreBitIdentical) {
  // Time-series capture is observe-only like the recorder: enabling it
  // (including a capacity small enough to wrap every ring) must not
  // perturb the run.
  const auto seq = appmodel::make_sequence(small_sequence(42));
  SimConfig off = engine_cfg();
  SimConfig on = engine_cfg();
  on.record_timeseries = true;
  SimConfig wrapping = engine_cfg();
  wrapping.record_timeseries = true;
  wrapping.timeseries_capacity = 8;  // forces ring wrap + evictions
  wrapping.timeseries_downsample = 2;

  SystemSimulator a(off, seq);
  SystemSimulator b(on, seq);
  SystemSimulator c(wrapping, seq);
  const SimResult ra = a.run();
  const SimResult rb = b.run();
  const SimResult rc = c.run();
  expect_identical(ra, rb);
  expect_identical(ra, rc);

  // Sanity: the enabled stores actually captured waveforms.
  EXPECT_EQ(a.timeseries().samples_total(), 0u);
  EXPECT_GT(b.timeseries().samples_total(), 0u);
  EXPECT_EQ(b.timeseries().samples_total(),
            c.timeseries().samples_total());
  EXPECT_GT(c.timeseries().evictions_total(),
            b.timeseries().evictions_total());
  EXPECT_NE(b.timeseries().find("psn.chip.peak_percent"), nullptr);
  EXPECT_NE(b.timeseries().find("admission.queue_depth"), nullptr);
  // The capture itself is deterministic: identical export bytes across
  // repeats.
  SystemSimulator b2(on, seq);
  (void)b2.run();
  std::ostringstream dump_b, dump_b2;
  b.timeseries().dump_jsonl(dump_b);
  b2.timeseries().dump_jsonl(dump_b2);
  EXPECT_EQ(dump_b.str(), dump_b2.str());
}

TEST(EngineEquivalence, TimeseriesSurvivesSnapshotResume) {
  // Unlike the recorder, store contents ARE snapshotted: a resumed
  // capture run must finish with the exact waveform history of the
  // uninterrupted one — same rings, same open aggregates, same
  // self-metric totals, byte-identical export.
  const auto seq = appmodel::make_sequence(small_sequence(42));
  SimConfig cfg = engine_cfg();
  cfg.record_timeseries = true;
  cfg.timeseries_capacity = 32;  // small enough to wrap mid-run
  cfg.timeseries_downsample = 4;

  SystemSimulator straight(cfg, seq);
  const SimResult r_straight = straight.run();

  const auto dir = std::filesystem::temp_directory_path() /
                   "parm_engine_equivalence_timeseries_test";
  std::filesystem::create_directories(dir);
  SystemSimulator first(cfg, seq);
  first.enable_periodic_snapshots(40, dir.string());
  (void)first.run();
  const auto snap = dir / "epoch_40.parmsnap";
  ASSERT_TRUE(std::filesystem::exists(snap));

  SystemSimulator resumed(cfg, seq);
  resumed.restore_snapshot(snap.string());
  const SimResult r_resumed = resumed.run();
  expect_identical(r_straight, r_resumed);

  EXPECT_EQ(resumed.timeseries().samples_total(),
            straight.timeseries().samples_total());
  EXPECT_EQ(resumed.timeseries().evictions_total(),
            straight.timeseries().evictions_total());
  std::ostringstream straight_dump, resumed_dump;
  straight.timeseries().dump_jsonl(straight_dump);
  resumed.timeseries().dump_jsonl(resumed_dump);
  EXPECT_EQ(straight_dump.str(), resumed_dump.str());
  std::filesystem::remove_all(dir);
}

TEST(EngineEquivalence, SnapshotFromCapturelessRunResumesWithCaptureOn) {
  // The fingerprint excludes the observe-only timeseries fields, so a
  // snapshot taken without capture resumes bit-identically with capture
  // enabled (the restored store is empty — the resumed run records only
  // its own half of the timeline, like the recorder test above).
  const auto seq = appmodel::make_sequence(small_sequence(42));
  SystemSimulator straight(engine_cfg(), seq);
  const SimResult r_straight = straight.run();

  const auto dir = std::filesystem::temp_directory_path() /
                   "parm_engine_equivalence_ts_off_on_test";
  std::filesystem::create_directories(dir);
  SystemSimulator first(engine_cfg(), seq);
  first.enable_periodic_snapshots(40, dir.string());
  (void)first.run();

  SimConfig with_ts = engine_cfg();
  with_ts.record_timeseries = true;
  SystemSimulator resumed(with_ts, seq);
  resumed.restore_snapshot((dir / "epoch_40.parmsnap").string());
  const SimResult r_resumed = resumed.run();
  expect_identical(r_straight, r_resumed);
  EXPECT_GT(resumed.timeseries().samples_total(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(EngineEquivalence, ParallelAndSerialPsnAreBitIdentical) {
  const auto seq = appmodel::make_sequence(small_sequence(1234));
  SimConfig serial = engine_cfg();
  serial.parallel_psn = false;
  SimConfig parallel = engine_cfg();
  parallel.parallel_psn = true;
  SystemSimulator a(serial, seq);
  SystemSimulator b(parallel, seq);
  expect_identical(a.run(), b.run());
}

TEST(EngineEquivalence, ParallelAndSerialNocAreBitIdentical) {
  // The sharded NoC cycle engine must reproduce serial stepping exactly,
  // at any shard count — forced to 4 here so the gang path runs even
  // when auto-sharding would pick serial on a narrow host.
  const auto seq = appmodel::make_sequence(small_sequence(1234));
  SimConfig serial = engine_cfg();
  serial.parallel_noc = false;
  SimConfig sharded = engine_cfg();
  sharded.parallel_noc = true;
  sharded.noc_shards = 4;
  SystemSimulator a(serial, seq);
  SystemSimulator b(sharded, seq);
  expect_identical(a.run(), b.run());
}

TEST(EngineEquivalence, SnapshotFromSerialNocResumesOnShardedEngine) {
  // parallel_noc / noc_shards are excluded from the config fingerprint:
  // a snapshot taken under the serial engine must resume bit-identically
  // on the sharded one (and the straight run here uses the default
  // engine, pinning serial-vs-default equivalence too).
  const auto seq = appmodel::make_sequence(small_sequence(42));
  SystemSimulator straight(engine_cfg(), seq);
  const SimResult r_straight = straight.run();

  const auto dir = std::filesystem::temp_directory_path() /
                   "parm_engine_equivalence_noc_shards_test";
  std::filesystem::create_directories(dir);
  SimConfig serial = engine_cfg();
  serial.parallel_noc = false;
  SystemSimulator first(serial, seq);
  first.enable_periodic_snapshots(40, dir.string());
  (void)first.run();
  const auto snap = dir / "epoch_40.parmsnap";
  ASSERT_TRUE(std::filesystem::exists(snap));

  SimConfig sharded = engine_cfg();
  sharded.parallel_noc = true;
  sharded.noc_shards = 4;
  SystemSimulator resumed(sharded, seq);
  resumed.restore_snapshot(snap.string());
  const SimResult r_resumed = resumed.run();
  expect_identical(r_straight, r_resumed);
  std::filesystem::remove_all(dir);
}

TEST(EngineEquivalence, ConcurrentSimulatorsKeepIndependentMetrics) {
  // Two engines over different workloads, run on different threads at the
  // same time: each registry must report exactly its own run's activity
  // (equal to a solo rerun of the same workload), and the process-default
  // registry must not move.
  const auto seq_a = appmodel::make_sequence(small_sequence(7));
  const auto seq_b = appmodel::make_sequence(small_sequence(8));
  const std::uint64_t default_before =
      obs::Registry::instance().counter_value("pdn.solves");

  SystemSimulator a(engine_cfg(), seq_a);
  SystemSimulator b(engine_cfg(), seq_b);
  std::thread ta([&] { a.run(); });
  std::thread tb([&] { b.run(); });
  ta.join();
  tb.join();

  SystemSimulator a_solo(engine_cfg(), seq_a);
  a_solo.run();
  SystemSimulator b_solo(engine_cfg(), seq_b);
  b_solo.run();

  for (const char* name :
       {"pdn.solves", "mapper.candidates_evaluated", "noc.panr_reroutes"}) {
    SCOPED_TRACE(name);
    EXPECT_EQ(a.metrics().counter_value(name),
              a_solo.metrics().counter_value(name));
    EXPECT_EQ(b.metrics().counter_value(name),
              b_solo.metrics().counter_value(name));
    EXPECT_GT(a.metrics().counter_value("pdn.solves"), 0u);
  }
  EXPECT_EQ(obs::Registry::instance().counter_value("pdn.solves"),
            default_before);
}

TEST(SimConfigValidate, AcceptsDefaultsAndRejectsBadFields) {
  SimConfig cfg = exp::default_sim_config();
  EXPECT_NO_THROW(cfg.validate());

  SimConfig bad_epoch = cfg;
  bad_epoch.epoch_s = 0.0;
  EXPECT_THROW(bad_epoch.validate(), CheckError);

  SimConfig bad_throttle = cfg;
  bad_throttle.throttle_factor = 0.0;
  EXPECT_THROW(bad_throttle.validate(), CheckError);

  SimConfig bad_cap = cfg;
  bad_cap.ve_probability_cap = 1.5;
  EXPECT_THROW(bad_cap.validate(), CheckError);

  SimConfig bad_faults = cfg;
  bad_faults.fault_injections = {{0.5, 3}, {0.1, 4}};
  EXPECT_THROW(bad_faults.validate(), CheckError);

  // The simulator constructor performs the same validation.
  SimConfig bad_stalls = cfg;
  bad_stalls.queue_max_stalls = 0;
  EXPECT_THROW(
      SystemSimulator(bad_stalls, appmodel::make_sequence(small_sequence(1))),
      CheckError);
}

}  // namespace
}  // namespace parm::sim
