// Tests for the flight-recorder stack: event vocabulary and JSONL shape,
// ring-buffer wrap/drop semantics, concurrent emission from ThreadPool
// workers, span derivation, Prometheus exposition, and health rules.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/spans.hpp"
#include "obs/trace.hpp"

namespace parm::obs {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON validator (same recursive descent as obs_test.cpp): no
// value extraction, just structural validity of exporter output.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

Event make_event(EventType type, double t, std::int32_t app = -1,
                 std::int32_t tile = -1, std::int32_t domain = -1,
                 double a = 0.0, double b = 0.0) {
  Event e;
  e.type = type;
  e.t = t;
  e.app = app;
  e.tile = tile;
  e.domain = domain;
  e.a = a;
  e.b = b;
  return e;
}

std::string event_json(const Event& e) {
  std::ostringstream os;
  write_event_json(os, e);
  return os.str();
}

// ---------------------------------------------------------------------
// Event vocabulary

TEST(Events, EveryTypeHasAUniqueName) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    const auto type = static_cast<EventType>(i);
    const std::string name = event_type_name(type);
    EXPECT_NE(name, "unknown") << "enumerator " << i;
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

TEST(Events, JsonOmitsUnsetIdsAndNamesPayload) {
  const Event admit =
      make_event(EventType::kAppAdmit, 0.25, /*app=*/3, -1, -1, 0.58, 16.0);
  const std::string json = event_json(admit);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"type\":\"app.admit\""), std::string::npos);
  EXPECT_NE(json.find("\"app\":3"), std::string::npos);
  EXPECT_NE(json.find("\"vdd\":0.58"), std::string::npos);
  EXPECT_NE(json.find("\"dop\":16"), std::string::npos);
  // Unset -1 ids are omitted entirely.
  EXPECT_EQ(json.find("\"tile\""), std::string::npos);
  EXPECT_EQ(json.find("\"domain\""), std::string::npos);
  EXPECT_EQ(json.find("\"chip\""), std::string::npos);

  Event ve = make_event(EventType::kVeOnset, 1.5, -1, -1, /*domain=*/2, 7.5);
  ve.chip = 1;
  const std::string ve_json = event_json(ve);
  EXPECT_TRUE(JsonValidator(ve_json).valid()) << ve_json;
  EXPECT_NE(ve_json.find("\"domain\":2"), std::string::npos);
  EXPECT_NE(ve_json.find("\"chip\":1"), std::string::npos);
  EXPECT_NE(ve_json.find("\"psn_percent\":7.5"), std::string::npos);
  EXPECT_EQ(ve_json.find("\"app\""), std::string::npos);
}

TEST(Events, EveryTypeWritesValidSingleLineJson) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    Event e = make_event(static_cast<EventType>(i), 0.1, 1, 2, 3, 4.0, 5.0);
    e.chip = 0;
    const std::string json = event_json(e);
    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_EQ(json.find('\n'), std::string::npos) << json;
  }
}

// ---------------------------------------------------------------------
// FlightRecorder

TEST(FlightRecorder, DisabledRecorderIgnoresEverything) {
  Registry reg;
  FlightRecorder rec(false, 8, 2, &reg);
  EXPECT_FALSE(rec.enabled());
  rec.emit(make_event(EventType::kAppArrival, 0.0, 0));
  EXPECT_EQ(rec.emitted(), 0u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.collect().empty());
  EXPECT_EQ(reg.counter_value("recorder.events_emitted"), 0u);
}

TEST(FlightRecorder, StampsSequentialSeqAndCollectsInOrder) {
  Registry reg;
  FlightRecorder rec(true, 64, 4, &reg);
  for (int i = 0; i < 10; ++i) {
    rec.emit(make_event(EventType::kAppArrival, 0.01 * i, i));
  }
  EXPECT_EQ(rec.emitted(), 10u);
  EXPECT_EQ(rec.size(), 10u);
  EXPECT_EQ(rec.dropped(), 0u);
  const std::vector<Event> events = rec.collect();
  ASSERT_EQ(events.size(), 10u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].app, static_cast<std::int32_t>(i));
  }
  EXPECT_EQ(reg.counter_value("recorder.events_emitted"), 10u);
  EXPECT_EQ(reg.counter_value("recorder.events_dropped"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("recorder.high_water"), 10.0);
}

TEST(FlightRecorder, WrapOverwritesOldestAndCountsDrops) {
  // Single shard for an exact retention statement: capacity 4, 10 emits
  // → the newest 4 survive and 6 count as dropped.
  Registry reg;
  FlightRecorder rec(true, 4, 1, &reg);
  for (int i = 0; i < 10; ++i) {
    rec.emit(make_event(EventType::kAppArrival, 0.01 * i, i));
  }
  EXPECT_EQ(rec.emitted(), 10u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  const std::vector<Event> events = rec.collect();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);
  }
  EXPECT_EQ(reg.counter_value("recorder.events_dropped"), 6u);
  // High water saturates at capacity once the ring wraps.
  EXPECT_DOUBLE_EQ(reg.gauge_value("recorder.high_water"), 4.0);
}

TEST(FlightRecorder, ShardedOccupancyIsMinOfEmittedAndCapacity) {
  // Round-robin sharding with an uneven capacity split: total occupancy
  // must still track min(emitted, capacity) exactly at every step.
  FlightRecorder rec(true, 7, 3);
  for (int i = 0; i < 25; ++i) {
    rec.emit(make_event(EventType::kAppArrival, 0.01 * i, i));
    const std::size_t expect = std::min<std::size_t>(i + 1, 7);
    EXPECT_EQ(rec.size(), expect) << "after emit " << i;
    EXPECT_EQ(rec.high_water(), expect);
  }
  EXPECT_EQ(rec.dropped(), 25u - 7u);
  // Collected seqs are unique and sorted even across shards.
  const std::vector<Event> events = rec.collect();
  ASSERT_EQ(events.size(), 7u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

TEST(FlightRecorder, ClampsDegenerateGeometry) {
  // shard_count > capacity and zero capacity both clamp to something
  // usable instead of dividing a ring into nothing.
  FlightRecorder tiny(true, 1, 8);
  tiny.emit(make_event(EventType::kAppArrival, 0.0, 0));
  tiny.emit(make_event(EventType::kAppArrival, 0.1, 1));
  EXPECT_EQ(tiny.size(), 1u);
  EXPECT_EQ(tiny.dropped(), 1u);

  FlightRecorder zero(true, 0, 0);
  zero.emit(make_event(EventType::kAppArrival, 0.0, 0));
  EXPECT_EQ(zero.size(), 1u);
  EXPECT_GE(zero.capacity(), 1u);
}

TEST(FlightRecorder, ClearResetsRetentionAndAccounting) {
  Registry reg;
  FlightRecorder rec(true, 4, 2, &reg);
  for (int i = 0; i < 9; ++i) {
    rec.emit(make_event(EventType::kAppArrival, 0.01 * i, i));
  }
  ASSERT_GT(rec.dropped(), 0u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.emitted(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.collect().empty());
  // Re-emission starts a fresh seq stream.
  rec.emit(make_event(EventType::kAppComplete, 1.0, 7));
  const std::vector<Event> events = rec.collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 0u);
}

TEST(FlightRecorder, DumpJsonlEmitsOneValidObjectPerLine) {
  FlightRecorder rec(true, 16, 2);
  rec.emit(make_event(EventType::kAppArrival, 0.0, 0, -1, -1, 1.5));
  rec.emit(make_event(EventType::kAppAdmit, 0.1, 0, -1, -1, 0.6, 8.0));
  rec.emit(make_event(EventType::kVeOnset, 0.2, -1, -1, 1, 6.0));
  std::ostringstream os;
  rec.dump_jsonl(os);
  std::istringstream in(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(JsonValidator(line).valid()) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 3);
}

TEST(FlightRecorder, ConcurrentEmissionFromPoolWorkersIsLossAccounted) {
  // Hammer one recorder from ThreadPool workers while the Tracer writes
  // to its own sinks — the combination the engine produces when tracing
  // and recording run together. Run under TSan in CI.
  const std::string chrome_path =
      ::testing::TempDir() + "events_test_trace.json";
  Tracer& tracer = Tracer::instance();
  ASSERT_TRUE(tracer.open_chrome(chrome_path));

  Registry reg;
  constexpr std::size_t kCapacity = 256;
  constexpr std::size_t kEmitters = 64;
  constexpr int kPerEmitter = 50;
  FlightRecorder rec(true, kCapacity, 8, &reg);
  ThreadPool pool(4);
  pool.parallel_for(kEmitters, [&](std::size_t worker) {
    ScopedTrace trace("test", "emit_burst");
    for (int i = 0; i < kPerEmitter; ++i) {
      rec.emit(make_event(EventType::kAppThrottle, 0.001 * i,
                          static_cast<std::int32_t>(worker), i));
      tracer.instant("test", "emitted",
                     {{"worker", static_cast<std::int64_t>(worker)}});
    }
  });
  tracer.close();

  const std::uint64_t total = kEmitters * kPerEmitter;
  EXPECT_EQ(rec.emitted(), total);
  EXPECT_EQ(rec.size(), kCapacity);
  EXPECT_EQ(rec.dropped(), total - kCapacity);
  EXPECT_EQ(rec.high_water(), kCapacity);
  EXPECT_EQ(reg.counter_value("recorder.events_emitted"), total);
  EXPECT_EQ(reg.counter_value("recorder.events_dropped"),
            total - kCapacity);
  // Every retained seq is unique: no slot was double-written torn.
  const std::vector<Event> events = rec.collect();
  std::set<std::uint64_t> seqs;
  for (const Event& e : events) {
    EXPECT_TRUE(seqs.insert(e.seq).second) << "duplicate seq " << e.seq;
    EXPECT_LT(e.seq, total);
  }
  std::remove(chrome_path.c_str());
}

// ---------------------------------------------------------------------
// Span derivation

std::vector<Event> one_app_life() {
  // app 5: arrives at 0.0, admitted at 0.2 onto tile 3, migrates to
  // tile 7 at 0.5 after a VE, throttled once, completes late at 1.2.
  std::vector<Event> events;
  events.push_back(make_event(EventType::kAppArrival, 0.0, 5, -1, -1, 1.0));
  events.push_back(
      make_event(EventType::kAppAdmit, 0.2, 5, -1, -1, 0.6, 8.0));
  events.push_back(make_event(EventType::kAppMap, 0.2, 5, 3, 0, 2.0, 0.0));
  events.push_back(make_event(EventType::kAppVe, 0.4, 5, 3, -1, 6.5, 0.0));
  events.push_back(
      make_event(EventType::kAppMigrate, 0.5, 5, 3, -1, 7.0, 6.5));
  events.push_back(
      make_event(EventType::kAppThrottle, 0.7, 5, 7, -1, 5.5));
  events.push_back(
      make_event(EventType::kAppComplete, 1.2, 5, -1, -1, 1.0, -0.2));
  events.push_back(
      make_event(EventType::kAppDeadlineMiss, 1.2, 5, -1, -1, 0.2));
  for (std::size_t i = 0; i < events.size(); ++i) events[i].seq = i;
  return events;
}

TEST(Spans, DerivesOneSpanPerAppWithSegmentsSplitAtMigration) {
  const std::vector<AppSpan> spans = derive_app_spans(one_app_life());
  ASSERT_EQ(spans.size(), 1u);
  const AppSpan& s = spans[0];
  EXPECT_EQ(s.app, 5);
  EXPECT_EQ(s.chip, -1);
  EXPECT_DOUBLE_EQ(s.arrival_t, 0.0);
  EXPECT_DOUBLE_EQ(s.admit_t, 0.2);
  EXPECT_DOUBLE_EQ(s.end_t, 1.2);
  EXPECT_DOUBLE_EQ(s.queue_wait(), 0.2);
  EXPECT_TRUE(s.admitted);
  EXPECT_TRUE(s.completed);
  EXPECT_TRUE(s.deadline_missed);
  EXPECT_FALSE(s.rejected);
  EXPECT_EQ(s.migrations, 1u);
  EXPECT_EQ(s.ves, 1u);
  EXPECT_EQ(s.throttles, 1u);
  ASSERT_EQ(s.exec.size(), 2u);
  EXPECT_DOUBLE_EQ(s.exec[0].start, 0.2);
  EXPECT_DOUBLE_EQ(s.exec[0].end, 0.5);
  EXPECT_EQ(s.exec[0].tile, 3);
  EXPECT_DOUBLE_EQ(s.exec[1].start, 0.5);
  EXPECT_DOUBLE_EQ(s.exec[1].end, 1.2);
  EXPECT_EQ(s.exec[1].tile, 7);
}

TEST(Spans, RejectedAppAndTruncatedArrivalDegradeGracefully) {
  std::vector<Event> events;
  // app 1 never admitted, rejected at 0.3.
  events.push_back(make_event(EventType::kAppArrival, 0.0, 1, -1, -1, 0.5));
  events.push_back(make_event(EventType::kAppReject, 0.3, 1));
  // app 2's arrival was overwritten by the ring: first sighting is the
  // admit. The span must still exist with arrival_t unknown.
  events.push_back(
      make_event(EventType::kAppAdmit, 0.4, 2, -1, -1, 0.7, 4.0));
  events.push_back(make_event(EventType::kAppComplete, 0.9, 2, -1, -1, 0.0,
                              0.1));
  for (std::size_t i = 0; i < events.size(); ++i) events[i].seq = i;

  const std::vector<AppSpan> spans = derive_app_spans(events);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].app, 1);
  EXPECT_TRUE(spans[0].rejected);
  EXPECT_FALSE(spans[0].admitted);
  EXPECT_DOUBLE_EQ(spans[0].queue_wait(), 0.0);
  EXPECT_EQ(spans[1].app, 2);
  EXPECT_TRUE(spans[1].completed);
  EXPECT_DOUBLE_EQ(spans[1].arrival_t, -1.0);
  EXPECT_DOUBLE_EQ(spans[1].queue_wait(), 0.0);
}

TEST(Spans, FleetEventsSplitByChip) {
  std::vector<Event> events;
  for (std::int16_t chip = 0; chip < 2; ++chip) {
    Event arrive = make_event(EventType::kAppArrival, 0.0, 9);
    arrive.chip = chip;
    Event admit = make_event(EventType::kAppAdmit, 0.1, 9, -1, -1, 0.6, 2.0);
    admit.chip = chip;
    events.push_back(arrive);
    events.push_back(admit);
  }
  const std::vector<AppSpan> spans = derive_app_spans(events);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].chip, 0);
  EXPECT_EQ(spans[1].chip, 1);
}

TEST(Spans, TraceIsValidChromeJson) {
  std::ostringstream os;
  write_span_trace(os, one_app_life());
  const std::string trace = os.str();
  EXPECT_TRUE(JsonValidator(trace).valid()) << trace;
  EXPECT_NE(trace.find("\"name\":\"lifecycle\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"queue-wait\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"exec\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(trace.find("thread_name"), std::string::npos);
  // 1 sim-second → 1 µs of trace time, so the 0.2 s admission lands at
  // ts 0.2 on the app's track (tid 5).
  EXPECT_NE(trace.find("\"tid\":5"), std::string::npos);
}

TEST(Spans, EmptyEventStreamYieldsValidEmptyTrace) {
  std::ostringstream os;
  write_span_trace(os, {});
  EXPECT_TRUE(JsonValidator(os.str()).valid()) << os.str();
  EXPECT_TRUE(derive_app_spans({}).empty());
}

// ---------------------------------------------------------------------
// Prometheus exposition

TEST(Prometheus, ExposesCountersGaugesAndCumulativeHistograms) {
  Registry reg;
  reg.counter("sim.ves").inc(3);
  reg.gauge("sim.queue_depth").set(2.5);
  Histogram& h = reg.histogram("solver.latency_us", {10.0, 100.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);

  std::ostringstream os;
  prometheus_text(reg, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE parm_sim_ves_total counter\n"
                      "parm_sim_ves_total 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE parm_sim_queue_depth gauge\n"
                      "parm_sim_queue_depth 2.5\n"),
            std::string::npos)
      << text;
  // Buckets are cumulative; the +Inf bucket equals the count.
  EXPECT_NE(text.find("parm_solver_latency_us_bucket{le=\"10\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("parm_solver_latency_us_bucket{le=\"100\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("parm_solver_latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("parm_solver_latency_us_sum 555"), std::string::npos)
      << text;
  EXPECT_NE(text.find("parm_solver_latency_us_count 3"), std::string::npos)
      << text;
}

TEST(Prometheus, SanitizesNamesToExpositionAlphabet) {
  Registry reg;
  reg.counter("weird-name.with spaces").inc();
  std::ostringstream os;
  prometheus_text(reg, os);
  EXPECT_NE(os.str().find("parm_weird_name_with_spaces_total 1"),
            std::string::npos)
      << os.str();
}

// ---------------------------------------------------------------------
// HealthMonitor

TEST(Health, EmptyRegistryIsOkWithNoDataReasons) {
  Registry reg;
  const HealthReport report = HealthMonitor().evaluate(reg);
  EXPECT_TRUE(report.ok());
  ASSERT_FALSE(report.checks.empty());
  int no_data = 0;
  for (const HealthCheck& check : report.checks) {
    EXPECT_EQ(check.status, HealthStatus::kOk) << check.name;
    if (check.reason == "no data") ++no_data;
  }
  EXPECT_GE(no_data, 3);  // ve rate, miss rate, cache hit rate
}

TEST(Health, VeRateEscalatesFromOkThroughWarnToCrit) {
  Registry reg;
  reg.counter("sim.epochs").inc(100);
  Counter& ves = reg.counter("sim.ves");
  const auto status_of = [&] {
    return HealthMonitor().evaluate(reg).status;
  };
  EXPECT_EQ(status_of(), HealthStatus::kOk);
  ves.inc(20);  // 0.2 VEs/epoch == warn threshold
  EXPECT_EQ(status_of(), HealthStatus::kWarn);
  ves.inc(180);  // 2.0 VEs/epoch == crit threshold
  EXPECT_EQ(status_of(), HealthStatus::kCrit);
}

TEST(Health, LowPsnCacheHitRateFires) {
  Registry reg;
  reg.counter("pdn.psn_cache_hits").inc(1);
  reg.counter("pdn.psn_cache_misses").inc(99);  // 1 % hit rate → CRIT
  const HealthReport report = HealthMonitor().evaluate(reg);
  EXPECT_TRUE(report.critical());
  for (const HealthCheck& check : report.checks) {
    if (check.name == "psn_cache_hit_rate") {
      EXPECT_EQ(check.status, HealthStatus::kCrit);
      EXPECT_NEAR(check.value, 0.01, 1e-12);
    }
  }
  // A healthy hit rate is OK.
  reg.counter("pdn.psn_cache_hits").inc(9899);  // 99 % hit rate
  EXPECT_TRUE(HealthMonitor().evaluate(reg).ok());
}

TEST(Health, RecorderDropsWarnAndQueueDepthUsesGauge) {
  Registry reg;
  reg.counter("recorder.events_dropped").inc(5);
  HealthReport report = HealthMonitor().evaluate(reg);
  EXPECT_EQ(report.status, HealthStatus::kWarn);

  reg.counter("recorder.events_dropped").reset();
  reg.gauge("sim.queue_depth").set(40.0);
  report = HealthMonitor().evaluate(reg);
  EXPECT_TRUE(report.critical());
}

TEST(Health, CustomThresholdsAndReportFormatting) {
  HealthConfig cfg;
  cfg.deadline_miss_rate_warn = 0.01;
  Registry reg;
  reg.counter("sim.apps_completed").inc(100);
  reg.counter("sim.deadline_misses").inc(2);
  const HealthReport report = HealthMonitor(cfg).evaluate(reg);
  EXPECT_EQ(report.status, HealthStatus::kWarn);

  std::ostringstream os;
  write_health_report(os, report);
  const std::string text = os.str();
  EXPECT_EQ(text.rfind("health: WARN", 0), 0u) << text;
  EXPECT_NE(text.find("deadline_miss_rate"), std::string::npos);
  // Worst check is listed first.
  EXPECT_LT(text.find("WARN deadline_miss_rate"), text.find("OK "));
}

}  // namespace
}  // namespace parm::obs
