// Tests for the experiment harness (parm_exp) and the proactive-throttle
// extension of the simulator.
#include <gtest/gtest.h>

#include "exp/experiments.hpp"

namespace parm::exp {
namespace {

TEST(Experiments, DefaultConfigMatchesPaperSetup) {
  const sim::SimConfig cfg = default_sim_config();
  EXPECT_EQ(cfg.platform.mesh_width, 10);
  EXPECT_EQ(cfg.platform.mesh_height, 6);
  EXPECT_EQ(cfg.platform.technology_nm, 7);
  EXPECT_DOUBLE_EQ(cfg.platform.dark_silicon_budget_w, 65.0);
  EXPECT_DOUBLE_EQ(cfg.platform.ve_threshold_percent, 5.0);
  EXPECT_DOUBLE_EQ(cfg.epoch_s, 1e-3);  // checkpoint period
  EXPECT_DOUBLE_EQ(cfg.checkpoint.period_s, 1e-3);
  EXPECT_DOUBLE_EQ(cfg.checkpoint.checkpoint_cycles, 256.0);
  EXPECT_DOUBLE_EQ(cfg.checkpoint.rollback_cycles, 10000.0);
  EXPECT_DOUBLE_EQ(cfg.framework.panr_threshold, 0.5);
  EXPECT_FALSE(cfg.proactive_throttle);
}

TEST(Experiments, AveragedMatrixAggregatesSeeds) {
  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Compute;
  seq.app_count = 3;
  seq.inter_arrival_s = 0.2;

  core::FrameworkConfig fw;
  fw.mapping = "PARM";
  fw.routing = "XY";

  const auto avg = run_matrix_averaged({fw}, seq, default_sim_config(),
                                       {1ull, 2ull});
  ASSERT_EQ(avg.size(), 1u);
  EXPECT_EQ(avg[0].framework, "PARM+XY");
  EXPECT_GT(avg[0].makespan_s, 0.0);
  EXPECT_GT(avg[0].completed, 0.0);
  EXPECT_LE(avg[0].completed, 3.0);

  // The average of two runs must lie between the per-seed extremes.
  double lo = 1e18, hi = -1e18;
  for (std::uint64_t s : {1ull, 2ull}) {
    const auto one = run_matrix_averaged({fw}, seq, default_sim_config(),
                                         {s});
    lo = std::min(lo, one[0].makespan_s);
    hi = std::max(hi, one[0].makespan_s);
  }
  EXPECT_GE(avg[0].makespan_s, lo - 1e-12);
  EXPECT_LE(avg[0].makespan_s, hi + 1e-12);
}

TEST(Experiments, AveragedMatrixRejectsEmptySeeds) {
  appmodel::SequenceConfig seq;
  core::FrameworkConfig fw;
  EXPECT_THROW(run_matrix_averaged({fw}, seq, default_sim_config(), {}),
               CheckError);
}

TEST(Throttle, ReducesEmergenciesForHm) {
  // HM at nominal Vdd is the VE-heavy configuration; the reactive
  // throttle must cut its emergencies substantially.
  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Compute;
  seq.app_count = 6;
  seq.inter_arrival_s = 0.1;
  seq.seed = 11;

  sim::SimConfig base = default_sim_config();
  base.framework.mapping = "HM";
  base.framework.routing = "XY";

  sim::SimConfig throttled = base;
  throttled.proactive_throttle = true;

  sim::SystemSimulator plain(base, appmodel::make_sequence(seq));
  sim::SystemSimulator guarded(throttled, appmodel::make_sequence(seq));
  const sim::SimResult r_plain = plain.run();
  const sim::SimResult r_guarded = guarded.run();

  EXPECT_EQ(r_plain.throttle_tile_epochs, 0u);
  EXPECT_GT(r_guarded.throttle_tile_epochs, 0u);
  EXPECT_LT(r_guarded.total_ve_count, r_plain.total_ve_count / 2);
}

TEST(Throttle, NearlyInertForParm) {
  // PARM already sits below the guard band most of the time: the
  // throttle must fire far less than under HM and not derail results.
  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Compute;
  seq.app_count = 6;
  seq.inter_arrival_s = 0.1;
  seq.seed = 11;

  sim::SimConfig hm = default_sim_config();
  hm.framework.mapping = "HM";
  hm.framework.routing = "XY";
  hm.proactive_throttle = true;

  sim::SimConfig parm = default_sim_config();
  parm.framework.mapping = "PARM";
  parm.framework.routing = "PANR";
  parm.proactive_throttle = true;

  sim::SystemSimulator hm_sim(hm, appmodel::make_sequence(seq));
  sim::SystemSimulator parm_sim(parm, appmodel::make_sequence(seq));
  const sim::SimResult r_hm = hm_sim.run();
  const sim::SimResult r_parm = parm_sim.run();

  EXPECT_LT(r_parm.throttle_tile_epochs * 2,
            r_hm.throttle_tile_epochs + 1);
  EXPECT_GE(r_parm.completed_count, r_hm.completed_count - 1);
}

TEST(Migration, MovesHotTasksAndIsAccounted) {
  // Force persistent over-margin readings with fault-free HM at 0.8 V:
  // its hot tiles stay hot, so migrations must fire when domains are
  // free (small workload leaves plenty).
  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Compute;
  seq.app_count = 2;
  seq.inter_arrival_s = 0.3;
  seq.seed = 5;

  sim::SimConfig cfg = default_sim_config();
  cfg.framework.mapping = "HM";
  cfg.framework.routing = "XY";
  cfg.enable_migration = true;

  sim::SystemSimulator sim(cfg, appmodel::make_sequence(seq));
  const sim::SimResult r = sim.run();
  EXPECT_GT(r.migration_count, 0u);
  EXPECT_EQ(r.completed_count, 2);
  // Resources still fully released after migrations.
  EXPECT_EQ(sim.platform().free_tile_count(), 60);
}

TEST(Migration, DisabledMeansZero) {
  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Compute;
  seq.app_count = 2;
  seq.inter_arrival_s = 0.3;
  seq.seed = 5;
  sim::SimConfig cfg = default_sim_config();
  cfg.framework.mapping = "HM";
  cfg.framework.routing = "XY";
  sim::SystemSimulator sim(cfg, appmodel::make_sequence(seq));
  EXPECT_EQ(sim.run().migration_count, 0u);
}

}  // namespace
}  // namespace parm::exp
