// Fault injection test suite (fault/fault_model.hpp, fault/fault_phase.hpp
// and the engine wiring in sim/system_sim.cpp):
//  - schedule text round-trip and validation;
//  - generated random fault schedules are a pure function of the seed;
//  - faults-disabled runs are bit-identical to the seed baseline (the
//    fault phase must be invisible when off);
//  - a faulty run snapshotted mid-campaign and resumed in a fresh
//    simulator matches the uninterrupted run bit for bit;
//  - router death remaps (or strands) its tasks and marks the platform
//    tile faulty so no mapper places new work there;
//  - sensor dropout perturbs management state only: the true PSN physics
//    still drives the VE dice.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "appmodel/workload.hpp"
#include "common/check.hpp"
#include "exp/experiments.hpp"
#include "fault/fault_model.hpp"
#include "fault/fault_phase.hpp"
#include "sim/system_sim.hpp"
#include "sim_result_compare.hpp"

namespace parm {
namespace {

std::string temp_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("parm_fault_test_") + tag);
  std::filesystem::create_directories(dir);
  return dir.string();
}

sim::SimConfig base_config(std::uint64_t seed) {
  sim::SimConfig cfg = exp::default_sim_config();
  cfg.framework.mapping = "PARM";
  cfg.framework.routing = "PANR";
  cfg.max_sim_time_s = 0.040;  // 40 control epochs
  cfg.record_telemetry = true;
  cfg.seed = seed;
  return cfg;
}

std::vector<appmodel::AppArrival> workload(std::uint64_t seed) {
  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Mixed;
  seq.app_count = 6;
  seq.inter_arrival_s = 0.005;
  seq.seed = seed;
  return appmodel::make_sequence(seq);
}

fault::FaultConfig stress_faults() {
  fault::FaultConfig f;
  f.enabled = true;
  f.random_link_failures = 3;
  f.random_router_failures = 1;
  f.random_fail_window_s = 0.030;  // inside the 40-epoch run
  f.repair_after_s = 0.008;
  f.sensor_dropout_per_epoch = 0.02;
  f.bit_error_base = 1e-4;
  f.bit_error_psn_slope = 2e-3;
  return f;
}

// ------------------------------------------------------- schedule model

TEST(FaultSchedule, TextRoundTripsCanonically) {
  const MeshGeometry mesh(10, 6);
  const std::string text =
      "# demo scenario\n"
      "link 0.001000 7 E down\n"
      "router 0.002000 13 down\n"
      "link 0.004000 7 E up\n"
      "router 0.010000 13 up\n";
  const fault::FaultSchedule s = fault::schedule_from_text(text, mesh);
  ASSERT_EQ(s.events.size(), 4u);
  EXPECT_EQ(s.events[0].kind, fault::FaultKind::kLinkDown);
  EXPECT_EQ(s.events[0].tile, 7);
  EXPECT_EQ(s.events[1].kind, fault::FaultKind::kRouterDown);
  EXPECT_EQ(s.events[3].kind, fault::FaultKind::kRouterUp);
  // to_text -> from_text is the identity on the parsed representation.
  const fault::FaultSchedule again =
      fault::schedule_from_text(fault::schedule_to_text(s), mesh);
  EXPECT_EQ(s.events, again.events);
}

TEST(FaultSchedule, GeneratedScheduleIsAPureFunctionOfTheSeed) {
  const MeshGeometry mesh(10, 6);
  const fault::FaultConfig f = stress_faults();
  const fault::FaultPhase a(f, mesh, 99);
  const fault::FaultPhase b(f, mesh, 99);
  const fault::FaultPhase c(f, mesh, 100);
  EXPECT_EQ(a.schedule().events, b.schedule().events);
  EXPECT_NE(a.schedule().events, c.schedule().events);
  // 3 links + 1 router, each paired with an auto-repair.
  EXPECT_EQ(a.schedule().events.size(), 8u);
  a.schedule().validate(mesh);
}

TEST(FaultConfig, RejectsOutOfRangeKnobs) {
  fault::FaultConfig f;
  f.enabled = true;
  f.sensor_dropout_per_epoch = 1.5;
  EXPECT_THROW(f.validate(), CheckError);
  f = fault::FaultConfig{};
  f.enabled = true;
  f.bit_error_base = -0.1;
  EXPECT_THROW(f.validate(), CheckError);
  f = fault::FaultConfig{};
  f.enabled = true;
  f.random_link_failures = -1;
  EXPECT_THROW(f.validate(), CheckError);
}

// ------------------------------------------------ engine-level identity

TEST(FaultIdentity, DisabledFaultsMatchBaselineBitForBit) {
  // SimConfig::faults default-constructs disabled; an explicitly
  // constructed disabled config (even with knobs set) must be invisible.
  sim::SimConfig plain = base_config(42);
  sim::SimConfig with_knobs = base_config(42);
  with_knobs.faults = stress_faults();
  with_knobs.faults.enabled = false;
  sim::SystemSimulator a(plain, workload(42));
  sim::SystemSimulator b(with_knobs, workload(42));
  sim::expect_identical(a.run(), b.run());
}

TEST(FaultIdentity, SameSeedFaultyRunsAreBitIdentical) {
  sim::SimConfig cfg = base_config(1234);
  cfg.faults = stress_faults();
  sim::SystemSimulator a(cfg, workload(1234));
  sim::SystemSimulator b(cfg, workload(1234));
  const sim::SimResult ra = a.run();
  const sim::SimResult rb = b.run();
  sim::expect_identical(ra, rb);
  // The stress scenario actually exercised the machinery.
  EXPECT_GT(ra.link_fault_events + ra.router_fault_events, 0u);
  EXPECT_GT(ra.sensor_dropout_epochs, 0u);
}

class FaultReplay : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultReplay, SnapshotResumeMidFaultMatchesBitForBit) {
  const std::uint64_t seed = GetParam();
  const std::string dir =
      temp_dir(("replay_" + std::to_string(seed)).c_str());
  sim::SimConfig cfg = base_config(seed);
  cfg.faults = stress_faults();

  sim::SystemSimulator straight(cfg, workload(seed));
  straight.enable_periodic_snapshots(1, dir);
  const sim::SimResult reference = straight.run();
  ASSERT_GE(straight.epoch(), 21u);

  // Resume points straddle the fault window: some snapshots carry live
  // topology faults, pending repairs, and held sensor state.
  for (const std::uint64_t resume_epoch : {1u, 9u, 20u}) {
    SCOPED_TRACE("resume from epoch " + std::to_string(resume_epoch));
    const std::string file =
        dir + "/epoch_" + std::to_string(resume_epoch) + ".parmsnap";
    sim::SystemSimulator resumed(cfg, workload(seed));
    resumed.restore_snapshot(file);
    EXPECT_EQ(resumed.epoch(), resume_epoch);
    sim::expect_identical(reference, resumed.run());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultReplay,
                         ::testing::Values(42u, 777u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(FaultFingerprint, FaultConfigIsPartOfTheSnapshotFingerprint) {
  const std::string dir = temp_dir("fingerprint");
  sim::SimConfig cfg = base_config(42);
  cfg.faults = stress_faults();
  sim::SystemSimulator original(cfg, workload(42));
  original.enable_periodic_snapshots(5, dir);
  (void)original.run();

  sim::SimConfig other = cfg;
  other.faults.random_link_failures += 1;
  sim::SystemSimulator resumed(other, workload(42));
  EXPECT_THROW(resumed.restore_snapshot(dir + "/epoch_5.parmsnap"),
               snapshot::SnapshotError);
}

// ------------------------------------------------- behavioral effects

TEST(FaultBehavior, RouterDeathIsSurvivable) {
  // Kill one router early and never repair it: the run must still finish
  // (tasks remapped or stranded, traffic routed around the hole), with the
  // event pair visible in the counters.
  const MeshGeometry mesh(10, 6);
  sim::SimConfig cfg = base_config(7);
  cfg.max_sim_time_s = 3.0;  // long enough to finish all six apps
  cfg.record_telemetry = false;
  cfg.faults.enabled = true;
  cfg.faults.schedule =
      fault::schedule_from_text("router 0.004 33 down\n", mesh);
  const sim::SimResult r =
      sim::SystemSimulator(cfg, workload(7)).run();
  EXPECT_EQ(r.router_fault_events, 1u);
  EXPECT_EQ(r.deadlock_windows, 0u);
  EXPECT_FALSE(r.timed_out);
  EXPECT_GT(r.completed_count, 0);
}

TEST(FaultBehavior, SensorDropoutPerturbsManagementNotPhysics) {
  // Dropout-only faults leave the NoC data plane healthy: no dropped or
  // corrupt flits, full delivery — but the dropout epochs are counted.
  sim::SimConfig cfg = base_config(42);
  cfg.faults.enabled = true;
  cfg.faults.sensor_dropout_per_epoch = 0.05;
  const sim::SimResult r =
      sim::SystemSimulator(cfg, workload(42)).run();
  EXPECT_GT(r.sensor_dropout_epochs, 0u);
  EXPECT_EQ(r.fault_dropped_flits, 0u);
  EXPECT_EQ(r.corrupt_packets, 0u);
  EXPECT_EQ(r.retransmitted_packets, 0u);
  EXPECT_EQ(r.deadlock_windows, 0u);
}

}  // namespace
}  // namespace parm
