// Fleet driver test suite: deterministic dispatch, bit-identical results
// across repeats and thread counts, and merge correctness against
// standalone per-chip reference runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "exp/experiments.hpp"
#include "fleet/dispatch.hpp"
#include "fleet/fleet_sim.hpp"
#include "sim/system_sim.hpp"
#include "sim_result_compare.hpp"

namespace parm::fleet {
namespace {

appmodel::SequenceConfig stream_cfg(int apps, std::uint64_t seed) {
  appmodel::SequenceConfig cfg;
  cfg.kind = appmodel::SequenceKind::Mixed;
  cfg.app_count = apps;
  cfg.inter_arrival_s = 0.05;
  cfg.seed = seed;
  return cfg;
}

FleetConfig fleet_cfg(int chips) {
  FleetConfig cfg;
  cfg.chip = exp::default_sim_config();
  cfg.chip.framework.mapping = "PARM";
  cfg.chip.framework.routing = "PANR";
  cfg.chip_count = chips;
  return cfg;
}

// ------------------------------------------------------------ dispatch

TEST(Dispatch, RoundRobinCyclesThroughChips) {
  RoundRobinDispatcher d(3);
  const auto seq = appmodel::make_sequence(stream_cfg(7, 1));
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(d.pick(seq[i]), static_cast<int>(i % 3));
  }
}

TEST(Dispatch, LeastLoadedBalancesWorkAndBreaksTiesLow) {
  LeastLoadedDispatcher d(4);
  const auto seq = appmodel::make_sequence(stream_cfg(8, 2));
  // All chips start at zero load, so the very first pick must be chip 0.
  EXPECT_EQ(d.pick(seq[0]), 0);
  // Subsequent picks go to an emptier chip than the one just loaded.
  std::map<int, double> load;
  load[0] = arrival_load_cycles(seq[0]);
  for (std::size_t i = 1; i < seq.size(); ++i) {
    const int chip = d.pick(seq[i]);
    for (const auto& [other, l] : load) {
      if (other != chip) EXPECT_LE(load[chip], l) << "arrival " << i;
    }
    load[chip] += arrival_load_cycles(seq[i]);
  }
}

TEST(Dispatch, FactoryRejectsUnknownPolicy) {
  EXPECT_THROW(make_dispatcher("random", 4), CheckError);
  EXPECT_THROW(make_dispatcher("round-robin", 0), CheckError);
  EXPECT_NE(make_dispatcher("least-loaded", 2), nullptr);
}

TEST(Dispatch, ArrivalLoadIsPositiveForProfiledApps) {
  const auto seq = appmodel::make_sequence(stream_cfg(3, 3));
  for (const auto& a : seq) EXPECT_GT(arrival_load_cycles(a), 0.0);
}

// ------------------------------------------------------------ fleet

TEST(Fleet, ShardsCoverTheStreamExactlyOnce) {
  const auto seq = appmodel::make_sequence(stream_cfg(10, 4));
  FleetSimulator fleet(fleet_cfg(3), seq);
  std::set<int> seen;
  std::size_t total = 0;
  for (int c = 0; c < fleet.chip_count(); ++c) {
    const auto& shard = fleet.chip_arrivals(c);
    total += shard.size();
    for (std::size_t i = 0; i < shard.size(); ++i) {
      // Shard ids are dense and local; the global mapping restores the
      // stream id exactly once across all chips.
      EXPECT_EQ(shard[i].id, static_cast<int>(i));
      EXPECT_TRUE(seen.insert(fleet.global_id(c, shard[i].id)).second);
    }
  }
  EXPECT_EQ(total, seq.size());
  EXPECT_EQ(seen.size(), seq.size());
}

TEST(Fleet, RepeatedRunsAreBitIdentical) {
  const auto seq = appmodel::make_sequence(stream_cfg(8, 5));
  FleetSimulator a(fleet_cfg(4), seq);
  FleetSimulator b(fleet_cfg(4), seq);
  const FleetResult ra = a.run();
  const FleetResult rb = b.run();
  ASSERT_EQ(ra.chips.size(), rb.chips.size());
  for (std::size_t c = 0; c < ra.chips.size(); ++c) {
    SCOPED_TRACE("chip " + std::to_string(c));
    sim::expect_identical(ra.chips[c], rb.chips[c]);
  }
  EXPECT_EQ(ra.completed_count, rb.completed_count);
  EXPECT_EQ(ra.total_ve_count, rb.total_ve_count);
  sim::expect_bits(ra.makespan_s, rb.makespan_s, "fleet makespan");
  sim::expect_bits(ra.total_energy_j, rb.total_energy_j, "fleet energy");
}

TEST(Fleet, ResultIndependentOfThreadCount) {
  const auto seq = appmodel::make_sequence(stream_cfg(8, 6));
  FleetConfig serial = fleet_cfg(4);
  serial.threads = 1;
  FleetConfig wide = fleet_cfg(4);
  wide.threads = 4;
  FleetSimulator a(serial, seq);
  FleetSimulator b(wide, seq);
  const FleetResult ra = a.run();
  const FleetResult rb = b.run();
  for (std::size_t c = 0; c < ra.chips.size(); ++c) {
    SCOPED_TRACE("chip " + std::to_string(c));
    sim::expect_identical(ra.chips[c], rb.chips[c]);
  }
  for (const char* name :
       {"pdn.solves", "mapper.candidates_evaluated", "noc.panr_reroutes"}) {
    EXPECT_EQ(a.metrics().counter_value(name),
              b.metrics().counter_value(name))
        << name;
  }
}

TEST(Fleet, MergeEqualsStandaloneChipRuns) {
  const auto seq = appmodel::make_sequence(stream_cfg(8, 7));
  const FleetConfig cfg = fleet_cfg(4);
  FleetSimulator fleet(cfg, seq);
  const FleetResult r = fleet.run();

  int completed = 0, dropped = 0;
  std::uint64_t ves = 0, solves = 0;
  double makespan = 0.0;
  for (int c = 0; c < cfg.chip_count; ++c) {
    sim::SimConfig chip_cfg = cfg.chip;
    chip_cfg.seed = cfg.chip.seed + static_cast<std::uint64_t>(c);
    sim::SystemSimulator ref(chip_cfg, fleet.chip_arrivals(c));
    const sim::SimResult rr = ref.run();
    SCOPED_TRACE("chip " + std::to_string(c));
    sim::expect_identical(rr, r.chips[static_cast<std::size_t>(c)]);
    completed += rr.completed_count;
    dropped += rr.dropped_count;
    ves += rr.total_ve_count;
    makespan = std::max(makespan, rr.makespan_s);
    solves += ref.metrics().counter_value("pdn.solves");
  }
  EXPECT_EQ(r.completed_count, completed);
  EXPECT_EQ(r.dropped_count, dropped);
  EXPECT_EQ(r.total_ve_count, ves);
  sim::expect_bits(r.makespan_s, makespan, "fleet makespan");
  EXPECT_EQ(fleet.metrics().counter_value("pdn.solves"), solves);
}

TEST(Fleet, MergedOutcomesCarryGlobalIdsSorted) {
  const auto seq = appmodel::make_sequence(stream_cfg(9, 8));
  FleetSimulator fleet(fleet_cfg(3), seq);
  const FleetResult r = fleet.run();
  ASSERT_EQ(r.apps.size(), seq.size());
  for (std::size_t i = 0; i < r.apps.size(); ++i) {
    EXPECT_EQ(r.apps[i].id, seq[i].id);
    EXPECT_EQ(r.apps[i].bench, seq[i].bench->name);
  }
}

TEST(Fleet, ConfigValidationRejectsBadFields) {
  const auto seq = appmodel::make_sequence(stream_cfg(4, 9));
  FleetConfig bad_chips = fleet_cfg(0);
  EXPECT_THROW(FleetSimulator(bad_chips, seq), CheckError);
  FleetConfig bad_policy = fleet_cfg(2);
  bad_policy.dispatch = "hash";
  EXPECT_THROW(FleetSimulator(bad_policy, seq), CheckError);
  FleetConfig bad_chip_cfg = fleet_cfg(2);
  bad_chip_cfg.chip.epoch_s = -1.0;
  EXPECT_THROW(FleetSimulator(bad_chip_cfg, seq), CheckError);
}

TEST(Fleet, MergedEventLogIsChipStampedGlobalIdedAndOrdered) {
  const auto seq = appmodel::make_sequence(stream_cfg(8, 5));
  FleetConfig cfg = fleet_cfg(3);
  cfg.chip.record_events = true;
  FleetSimulator fleet(cfg, seq);
  (void)fleet.run();

  const std::vector<obs::Event>& events = fleet.events();
  ASSERT_FALSE(events.empty());
  std::set<int> apps_seen;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::Event& e = events[i];
    // Every merged event is chip-stamped and app ids are global stream
    // ids, never chip-local ones out of range of the stream.
    EXPECT_GE(e.chip, 0);
    EXPECT_LT(e.chip, 3);
    if (e.app >= 0) {
      EXPECT_LT(e.app, static_cast<std::int32_t>(seq.size()));
      apps_seen.insert(e.app);
    }
    if (i > 0) {
      const obs::Event& p = events[i - 1];
      const bool ordered =
          p.t < e.t || (p.t == e.t && (p.chip < e.chip ||
                                       (p.chip == e.chip && p.seq < e.seq)));
      EXPECT_TRUE(ordered) << "event " << i << " out of (t, chip, seq) order";
    }
  }
  // Every app in the stream arrived somewhere, so every id shows up.
  EXPECT_EQ(apps_seen.size(), seq.size());

  // The JSONL dump carries one line per merged event.
  std::ostringstream os;
  fleet.dump_events_jsonl(os);
  std::size_t lines = 0;
  for (const char ch : os.str()) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, events.size());
}

TEST(Fleet, HealthRollupCoversEveryChipAndTheFleet) {
  const auto seq = appmodel::make_sequence(stream_cfg(8, 6));
  FleetConfig cfg = fleet_cfg(4);
  cfg.chip.record_events = true;
  FleetSimulator fleet(cfg, seq);
  const FleetResult r = fleet.run();
  ASSERT_EQ(r.chip_health.size(), 4u);
  for (const obs::HealthReport& rep : r.chip_health) {
    EXPECT_FALSE(rep.checks.empty());
  }
  EXPECT_FALSE(r.fleet_health.checks.empty());
  // The merged registry saw epochs, so the fleet VE-rate rule has data.
  EXPECT_GT(fleet.metrics().counter_value("sim.epochs"), 0u);
  for (const obs::HealthCheck& check : r.fleet_health.checks) {
    if (check.name == "ve_rate") EXPECT_NE(check.reason, "no data");
  }
}

TEST(Fleet, EventLogEmptyWhenRecordingDisabled) {
  const auto seq = appmodel::make_sequence(stream_cfg(4, 7));
  FleetSimulator fleet(fleet_cfg(2), seq);
  (void)fleet.run();
  EXPECT_TRUE(fleet.events().empty());
  EXPECT_EQ(fleet.timeseries().series_count(), 0u);
}

TEST(Fleet, MergedTimeseriesIsChipPrefixedAndMatchesStandaloneRuns) {
  const auto seq = appmodel::make_sequence(stream_cfg(8, 5));
  FleetConfig cfg = fleet_cfg(3);
  cfg.chip.record_timeseries = true;
  FleetSimulator fleet(cfg, seq);
  (void)fleet.run();

  const obs::TimeSeriesStore& merged = fleet.timeseries();
  ASSERT_GT(merged.series_count(), 0u);
  // Every merged series carries a chip prefix in range.
  for (const std::string& name : merged.series_names()) {
    ASSERT_EQ(name.rfind("chip", 0), 0u) << name;
    const int chip = name[4] - '0';
    EXPECT_GE(chip, 0);
    EXPECT_LT(chip, 3);
    EXPECT_EQ(name[5], '.') << name;
  }

  // Chip 1's merged waveforms equal a standalone run of its shard (the
  // same clone-under-prefix contract the event log has for seqs).
  sim::SimConfig chip_cfg = cfg.chip;
  chip_cfg.seed = cfg.chip.seed + 1;
  sim::SystemSimulator ref(chip_cfg, fleet.chip_arrivals(1));
  (void)ref.run();
  std::uint64_t chip1_samples = 0;
  for (const std::string& name : ref.timeseries().series_names()) {
    const obs::TimeSeries* m = merged.find("chip1." + name);
    ASSERT_NE(m, nullptr) << name;
    const obs::TimeSeries* r = ref.timeseries().find(name);
    EXPECT_EQ(m->appended(), r->appended()) << name;
    chip1_samples += r->appended();
    const auto ms = m->samples(0);
    const auto rs = r->samples(0);
    ASSERT_EQ(ms.size(), rs.size()) << name;
    for (std::size_t i = 0; i < ms.size(); ++i) {
      EXPECT_EQ(ms[i].t_start, rs[i].t_start) << name;
      EXPECT_EQ(ms[i].max, rs[i].max) << name;
    }
  }
  EXPECT_EQ(chip1_samples, ref.timeseries().samples_total());
  // The merged totals fold every chip, so chip 1 alone is a lower bound.
  EXPECT_GT(merged.samples_total(), chip1_samples);

  // The fleet registry's timeseries.samples counter equals the merged
  // store total exactly once (registry merge only — no double count
  // from the store merge).
  EXPECT_EQ(fleet.metrics().counter_value("timeseries.samples"),
            merged.samples_total());

  // The merged dump is deterministic across a fresh fleet run.
  FleetSimulator again(cfg, seq);
  (void)again.run();
  std::ostringstream a, b;
  fleet.dump_timeseries_jsonl(a);
  again.dump_timeseries_jsonl(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Fleet, LeastLoadedDispatchRunsEndToEnd) {
  const auto seq = appmodel::make_sequence(stream_cfg(8, 10));
  FleetConfig cfg = fleet_cfg(4);
  cfg.dispatch = "least-loaded";
  FleetSimulator fleet(cfg, seq);
  const FleetResult r = fleet.run();
  EXPECT_EQ(r.apps.size(), seq.size());
  EXPECT_GT(r.completed_count, 0);
}

}  // namespace
}  // namespace parm::fleet
