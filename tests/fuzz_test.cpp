// Randomized (seeded, reproducible) stress tests of stateful components:
//  - Platform occupy/migrate/release fuzz against a reference model;
//  - EDF queue fuzz against a sorted-reference implementation;
//  - benchmark-suite profile sanity across every benchmark (TEST_P);
//  - snapshot-loader robustness: truncations, byte flips, and header
//    corruptions of a real simulator snapshot must all surface as
//    snapshot::SnapshotError — never a crash, never a silent
//    half-restore;
//  - blackbox JSONL-loader robustness: the parm_blackbox loaders accept
//    arbitrarily mangled event/time-series dumps (truncated lines, bad
//    escapes, shuffled sequence numbers, bit flips) without ever
//    throwing, and account for every input line as parsed or skipped.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "appmodel/application.hpp"
#include "cmp/platform.hpp"
#include "common/rng.hpp"
#include "exp/experiments.hpp"
#include "fault/fault_model.hpp"
#include "noc/routing_table.hpp"
#include "noc/topology.hpp"
#include "obs/blackbox.hpp"
#include "power/technology.hpp"
#include "power/vf_model.hpp"
#include "sched/edf.hpp"
#include "sim/system_sim.hpp"
#include "snapshot/snapshot_file.hpp"

namespace parm {
namespace {

// ------------------------------------------------------ platform fuzzing

TEST(PlatformFuzz, RandomOpsPreserveInvariants) {
  cmp::Platform platform{cmp::PlatformConfig{}};
  Rng rng(20260707);

  // Reference model: app -> set of tiles; tile -> app; domain vdd.
  std::map<cmp::AppInstanceId, std::vector<TileId>> ref_apps;
  std::map<TileId, cmp::AppInstanceId> ref_tiles;
  cmp::AppInstanceId next_app = 1;
  const std::vector<double> vdds = {0.4, 0.5, 0.6, 0.7, 0.8};

  for (int step = 0; step < 3000; ++step) {
    const double op = rng.uniform01();
    if (op < 0.45) {
      // Occupy: a random free domain entirely, at a random vdd.
      const auto free = platform.free_domains();
      if (free.empty()) continue;
      const DomainId d = free[rng.pick_index(free.size())];
      const double vdd = vdds[rng.pick_index(vdds.size())];
      std::vector<cmp::Platform::Placement> places;
      const auto tiles = platform.mesh().domain_tiles(d);
      for (int k = 0; k < 4; ++k) {
        places.push_back({k, tiles[static_cast<std::size_t>(k)],
                          rng.uniform(0.1, 0.9)});
      }
      platform.occupy(next_app, places, vdd);
      for (const auto& p : places) {
        ref_apps[next_app].push_back(p.tile);
        ref_tiles[p.tile] = next_app;
      }
      ++next_app;
    } else if (op < 0.75) {
      // Release a random live app.
      if (ref_apps.empty()) continue;
      auto it = ref_apps.begin();
      std::advance(it, static_cast<long>(rng.pick_index(ref_apps.size())));
      platform.release(it->first);
      for (TileId t : it->second) ref_tiles.erase(t);
      ref_apps.erase(it);
    } else {
      // Migrate one task of a random app to a random free tile whose
      // domain is free (guaranteed-compatible move).
      if (ref_apps.empty()) continue;
      auto it = ref_apps.begin();
      std::advance(it, static_cast<long>(rng.pick_index(ref_apps.size())));
      const auto free_domains = platform.free_domains();
      if (free_domains.empty() || it->second.empty()) continue;
      const TileId from =
          it->second[rng.pick_index(it->second.size())];
      const TileId to = platform.mesh().domain_tiles(
          free_domains[rng.pick_index(free_domains.size())])[0];
      platform.migrate(it->first, from, to);
      *std::find(it->second.begin(), it->second.end(), from) = to;
      ref_tiles.erase(from);
      ref_tiles[to] = it->first;
    }

    // Invariants after every operation.
    std::size_t occupied = 0;
    for (TileId t = 0; t < platform.mesh().tile_count(); ++t) {
      const auto& asg = platform.tile(t);
      if (asg.app == cmp::kNoApp) {
        EXPECT_EQ(ref_tiles.count(t), 0u);
      } else {
        ++occupied;
        ASSERT_EQ(ref_tiles.at(t), asg.app);
        // Occupied tile implies a powered domain.
        EXPECT_TRUE(
            platform.domain_vdd(platform.mesh().domain_of(t)).has_value());
      }
    }
    EXPECT_EQ(occupied, ref_tiles.size());
    EXPECT_EQ(platform.free_tile_count(),
              platform.mesh().tile_count() -
                  static_cast<std::int32_t>(occupied));
  }
}

// ----------------------------------------------------------- EDF fuzzing

TEST(EdfFuzz, MatchesReferenceSortUnderRandomOps) {
  Rng rng(424242);
  sched::EdfQueue queue;
  // Reference: multiset-like vector of (deadline, seq, id), popped in
  // (deadline, insertion-order) order.
  std::vector<std::tuple<double, int, std::int64_t>> ref;
  int seq = 0;
  std::int64_t next_id = 0;

  for (int step = 0; step < 5000; ++step) {
    if (ref.empty() || rng.bernoulli(0.6)) {
      const double deadline = rng.uniform(0.0, 10.0);
      queue.push(next_id, deadline);
      ref.emplace_back(deadline, seq++, next_id);
      ++next_id;
    } else {
      const auto best = std::min_element(ref.begin(), ref.end());
      const auto popped = queue.pop();
      EXPECT_EQ(popped.id, std::get<2>(*best));
      EXPECT_DOUBLE_EQ(popped.deadline_s, std::get<0>(*best));
      ref.erase(best);
    }
    EXPECT_EQ(queue.size(), ref.size());
  }
}

// ------------------------------------------- per-benchmark profile sanity

class BenchmarkSuiteSweep
    : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchmarkSuiteSweep, ProfileIsWellFormedAtEveryDop) {
  const auto& bench = appmodel::benchmark_by_name(GetParam());
  const appmodel::ApplicationProfile profile(bench, 20260707);
  const power::VoltageFrequencyModel vf(power::technology_node(7));

  for (int dop : profile.dops()) {
    const auto& v = profile.variant(dop);
    ASSERT_EQ(static_cast<int>(v.tasks.size()), dop);
    EXPECT_TRUE(v.graph.validate());
    EXPECT_GT(v.critical_path_cycles, 0.0);

    double total_work = 0.0;
    for (const auto& t : v.tasks) {
      EXPECT_GT(t.work_cycles, 0.0);
      EXPECT_GE(t.activity, 0.05);
      EXPECT_LE(t.activity, 0.98);
      total_work += t.work_cycles;
    }
    // Critical path can never exceed the total work nor undercut the
    // biggest single task.
    double max_task = 0.0;
    for (const auto& t : v.tasks) max_task = std::max(max_task, t.work_cycles);
    EXPECT_LE(max_task, total_work);
    EXPECT_GT(v.critical_path_cycles, 0.5 * max_task);

    // WCET is positive and finite at every DVS level.
    for (double vdd : {0.4, 0.5, 0.6, 0.7, 0.8}) {
      const double w = profile.wcet_seconds(vdd, dop, vf);
      EXPECT_GT(w, 0.0);
      EXPECT_LT(w, 100.0);
    }
  }
  // The high-activity fraction should reflect the benchmark's class:
  // compute-intensive suites are High-dominated.
  if (bench.kind == appmodel::WorkloadKind::ComputeIntensive) {
    EXPECT_GT(profile.variant(bench.max_dop).high_activity_fraction(),
              0.75);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllThirteen, BenchmarkSuiteSweep,
    ::testing::Values("cholesky", "fft", "raytrace", "dedup", "canneal",
                      "vips", "radix", "swaptions", "fluidanimate",
                      "streamcluster", "blackscholes", "bodytrack",
                      "radiosity"));

// ----------------------------------------------- snapshot loader fuzzing

class SnapshotLoaderFuzz : public ::testing::Test {
 protected:
  static sim::SimConfig fuzz_config() {
    sim::SimConfig cfg = exp::default_sim_config();
    cfg.framework.mapping = "PARM";
    cfg.framework.routing = "PANR";
    cfg.max_sim_time_s = 0.010;  // keep the donor run tiny
    cfg.seed = 5;
    return cfg;
  }

  static std::vector<appmodel::AppArrival> fuzz_workload() {
    appmodel::SequenceConfig seq;
    seq.kind = appmodel::SequenceKind::Mixed;
    seq.app_count = 3;
    seq.inter_arrival_s = 0.003;
    seq.seed = 5;
    return appmodel::make_sequence(seq);
  }

  /// Bytes of a valid snapshot taken from a short live run.
  static const std::vector<std::uint8_t>& valid_file() {
    static const std::vector<std::uint8_t> bytes = [] {
      const std::string dir = scratch_dir();
      sim::SystemSimulator simulator(fuzz_config(), fuzz_workload());
      simulator.enable_periodic_snapshots(5, dir);
      (void)simulator.run();
      std::ifstream in(dir + "/epoch_5.parmsnap", std::ios::binary);
      return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                       std::istreambuf_iterator<char>());
    }();
    return bytes;
  }

  // Per-process scratch directory: ctest runs each TEST in its own
  // process, concurrently, so a shared path would race on the mutant
  // file.
  static std::string scratch_dir() {
    const auto dir = std::filesystem::temp_directory_path() /
                     ("parm_loader_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    return dir.string();
  }

  static std::string write_bytes(const std::vector<std::uint8_t>& bytes) {
    const std::string path = scratch_dir() + "/mutant.parmsnap";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  /// Rewrites the header (payload size + CRC) so it is consistent with
  /// `payload` — used to smuggle structural corruption past the CRC and
  /// exercise the Reader's own validation.
  static std::vector<std::uint8_t> file_around(
      const std::vector<std::uint8_t>& payload) {
    std::vector<std::uint8_t> f(valid_file().begin(),
                                valid_file().begin() +
                                    snapshot::kHeaderBytes);
    const std::uint64_t size = payload.size();
    const std::uint64_t crc = snapshot::crc64(payload.data(),
                                              payload.size());
    for (int i = 0; i < 8; ++i) {
      f[12 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(size >> (8 * i));
      f[20 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(crc >> (8 * i));
    }
    f.insert(f.end(), payload.begin(), payload.end());
    return f;
  }

  /// Every mutated file must fail with SnapshotError — never crash, never
  /// restore anything into the simulator.
  static void expect_rejected(const std::vector<std::uint8_t>& bytes,
                              const char* what) {
    const std::string path = write_bytes(bytes);
    sim::SystemSimulator victim(fuzz_config(), fuzz_workload());
    try {
      victim.restore_snapshot(path);
      FAIL() << what << ": corrupt snapshot was accepted";
    } catch (const snapshot::SnapshotError& e) {
      EXPECT_FALSE(std::string(e.what()).empty())
          << what << ": error must carry a diagnostic message";
    }
  }
};

TEST_F(SnapshotLoaderFuzz, ValidDonorFileRestores) {
  const std::string path = write_bytes(valid_file());
  sim::SystemSimulator victim(fuzz_config(), fuzz_workload());
  EXPECT_NO_THROW(victim.restore_snapshot(path));
  EXPECT_EQ(victim.epoch(), 5u);
}

TEST_F(SnapshotLoaderFuzz, TruncationsAtEveryRegionAreRejected) {
  const auto& file = valid_file();
  ASSERT_GT(file.size(), snapshot::kHeaderBytes);
  // Empty file, mid-header, just past the header, and a spread of cuts
  // through the payload.
  std::vector<std::size_t> cuts = {0, 7, 12, 20, 27, 28, 29};
  for (int k = 1; k < 16; ++k) {
    cuts.push_back(file.size() * static_cast<std::size_t>(k) / 16);
  }
  cuts.push_back(file.size() - 1);
  for (const std::size_t cut : cuts) {
    if (cut >= file.size()) continue;
    SCOPED_TRACE("truncated to " + std::to_string(cut) + " bytes");
    expect_rejected({file.begin(), file.begin() + static_cast<long>(cut)},
                    "truncation");
  }
}

TEST_F(SnapshotLoaderFuzz, RandomBitFlipsAreRejected) {
  const auto& file = valid_file();
  Rng rng(20260805);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> mutant = file;
    const std::size_t pos = rng.pick_index(mutant.size());
    mutant[pos] ^= static_cast<std::uint8_t>(1u << rng.pick_index(8));
    SCOPED_TRACE("bit flip at byte " + std::to_string(pos));
    // A flip anywhere is caught: header flips break magic/version/size,
    // payload flips break the CRC.
    expect_rejected(mutant, "bit flip");
  }
}

TEST_F(SnapshotLoaderFuzz, WrongMagicAndVersionAreRejected) {
  std::vector<std::uint8_t> wrong_magic = valid_file();
  wrong_magic[0] = 'X';
  expect_rejected(wrong_magic, "magic");

  std::vector<std::uint8_t> wrong_version = valid_file();
  wrong_version[8] = static_cast<std::uint8_t>(snapshot::kFormatVersion + 1);
  expect_rejected(wrong_version, "version");
}

TEST_F(SnapshotLoaderFuzz, CorruptCrcIsRejected) {
  std::vector<std::uint8_t> mutant = valid_file();
  mutant[20] ^= 0xFF;
  expect_rejected(mutant, "crc");
}

TEST_F(SnapshotLoaderFuzz, StructuralCorruptionBehindValidCrcIsRejected) {
  // Rebuild a consistent header around a damaged payload so the file-level
  // checks pass and the Reader's structural validation must catch it.
  const auto& file = valid_file();
  const std::vector<std::uint8_t> payload(
      file.begin() + snapshot::kHeaderBytes, file.end());

  // Payload cut mid-structure.
  for (const std::size_t frac : {1u, 2u, 3u}) {
    const std::size_t cut = payload.size() * frac / 4;
    SCOPED_TRACE("payload truncated to " + std::to_string(cut));
    expect_rejected(
        file_around({payload.begin(),
                     payload.begin() + static_cast<long>(cut)}),
        "payload truncation");
  }

  // Section tag overwritten: the reader must fail on the tag, not wander.
  std::vector<std::uint8_t> bad_tag = payload;
  const char tag[] = {'R', 'N', 'G', '0'};
  auto it = std::search(bad_tag.begin(), bad_tag.end(), tag, tag + 4);
  ASSERT_NE(it, bad_tag.end());
  *it = 'Z';
  expect_rejected(file_around(bad_tag), "section tag");

  // Fingerprint overwritten (first payload field after the SIMS tag):
  // resume against a mismatched run must be refused.
  std::vector<std::uint8_t> bad_fp = payload;
  bad_fp[4] ^= 0xFF;  // byte 0-3: "SIMS", byte 4: fingerprint LSB
  expect_rejected(file_around(bad_fp), "fingerprint");
}

// ----------------------------------------------- blackbox loader fuzzing

class BlackboxLoaderFuzz : public ::testing::Test {
 protected:
  /// Donor artifacts from a short real run with both recorders on.
  static const std::pair<std::string, std::string>& valid_dumps() {
    static const std::pair<std::string, std::string> dumps = [] {
      sim::SimConfig cfg = exp::default_sim_config();
      cfg.framework.mapping = "PARM";
      cfg.framework.routing = "PANR";
      cfg.max_sim_time_s = 0.020;
      cfg.record_events = true;
      cfg.record_timeseries = true;
      cfg.timeseries_capacity = 16;  // wraps, so dumps hold every level
      cfg.timeseries_downsample = 2;
      appmodel::SequenceConfig seq;
      seq.kind = appmodel::SequenceKind::Mixed;
      seq.app_count = 3;
      seq.inter_arrival_s = 0.003;
      seq.seed = 5;
      sim::SystemSimulator simulator(cfg, appmodel::make_sequence(seq));
      (void)simulator.run();
      std::ostringstream ev, ts;
      simulator.recorder().dump_jsonl(ev);
      simulator.timeseries().dump_jsonl(ts);
      return std::make_pair(ev.str(), ts.str());
    }();
    return dumps;
  }

  /// Both loaders over the same text: must never throw, and must account
  /// for every non-blank line as parsed or skipped.
  static void expect_survives(const std::string& text, const char* what) {
    SCOPED_TRACE(what);
    std::istringstream ev_in(text);
    obs::BlackboxLoadStats ev_stats;
    std::vector<obs::Event> events;
    ASSERT_NO_THROW(events = obs::load_events_jsonl(ev_in, &ev_stats));
    EXPECT_EQ(ev_stats.parsed + ev_stats.skipped, ev_stats.lines);
    EXPECT_EQ(events.size(), ev_stats.parsed);
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_LE(events[i - 1].t, events[i].t);
    }

    std::istringstream ts_in(text);
    obs::BlackboxLoadStats ts_stats;
    ASSERT_NO_THROW(obs::load_timeseries_jsonl(ts_in, &ts_stats));
    EXPECT_EQ(ts_stats.parsed + ts_stats.skipped, ts_stats.lines);
  }
};

TEST_F(BlackboxLoaderFuzz, ValidDumpsLoadCompletely) {
  std::istringstream ev_in(valid_dumps().first);
  obs::BlackboxLoadStats ev_stats;
  const auto events = obs::load_events_jsonl(ev_in, &ev_stats);
  EXPECT_GT(events.size(), 0u);
  EXPECT_EQ(ev_stats.skipped, 0u);
  EXPECT_EQ(ev_stats.out_of_order, 0u);

  std::istringstream ts_in(valid_dumps().second);
  obs::BlackboxLoadStats ts_stats;
  const auto ts = obs::load_timeseries_jsonl(ts_in, &ts_stats);
  EXPECT_GT(ts.size(), 0u);
  EXPECT_EQ(ts_stats.skipped, 0u);
}

TEST_F(BlackboxLoaderFuzz, TruncatedLinesSurvive) {
  // Cut the dump at a spread of byte offsets: the final line becomes a
  // torn JSON object (mid-key, mid-number, mid-escape...).
  for (const std::string* dump :
       {&valid_dumps().first, &valid_dumps().second}) {
    for (int k = 1; k < 24; ++k) {
      const std::size_t cut =
          dump->size() * static_cast<std::size_t>(k) / 24;
      expect_survives(dump->substr(0, cut), "truncated dump");
    }
  }
}

TEST_F(BlackboxLoaderFuzz, BadEscapesAndMangledStringsSurvive) {
  const std::string corpus =
      // Bad escape letter, truncated \u, non-hex \u payload.
      "{\"seq\":0,\"t\":0.1,\"type\":\"app.a\\qrival\"}\n"
      "{\"seq\":1,\"t\":0.1,\"type\":\"ve.onset\\u00\"}\n"
      "{\"seq\":2,\"t\":0.1,\"type\":\"ve.onset\\uZZZZ\",\"domain\":1}\n"
      // Unterminated string, unterminated object.
      "{\"seq\":3,\"t\":0.2,\"type\":\"ve.onset\n"
      "{\"seq\":4,\"t\":0.2,\"type\":\"ve.onset\",\"psn_percent\":6.1\n"
      // Valid escapes must still parse (type round-trips to kVeOnset).
      "{\"seq\":5,\"t\":0.3,\"type\":\"ve.onset\",\"domain\":2}\n"
      // Numbers that are not numbers.
      "{\"seq\":6,\"t\":nope,\"type\":\"ve.onset\"}\n"
      "{\"seq\":7,\"t\":1e999,\"type\":\"ve.onset\"}\n"
      // Deep nesting the flat parser refuses rather than misreads.
      "{\"seq\":8,\"t\":0.4,\"type\":\"ve.onset\",\"x\":{\"y\":[1,2]}}\n";
  expect_survives(corpus, "bad escapes");

  std::istringstream in(corpus);
  obs::BlackboxLoadStats stats;
  const auto events = obs::load_events_jsonl(in, &stats);
  // Exactly the one clean line survives.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, obs::EventType::kVeOnset);
  EXPECT_EQ(events[0].domain, 2);
}

TEST_F(BlackboxLoaderFuzz, ShuffledSeqIsCountedAndNormalized) {
  // Reverse the donor's lines: every adjacent pair regresses.
  std::istringstream in(valid_dumps().first);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 2u);
  std::reverse(lines.begin(), lines.end());
  std::string reversed;
  for (const std::string& l : lines) reversed += l + "\n";

  std::istringstream rev_in(reversed);
  obs::BlackboxLoadStats stats;
  const auto events = obs::load_events_jsonl(rev_in, &stats);
  EXPECT_EQ(events.size(), lines.size());
  EXPECT_EQ(stats.out_of_order, lines.size() - 1);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t, events[i].t);
    if (events[i - 1].t == events[i].t) {
      EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
  }
}

TEST_F(BlackboxLoaderFuzz, RandomByteFlipsSurvive) {
  Rng rng(20260808);
  for (const std::string* dump :
       {&valid_dumps().first, &valid_dumps().second}) {
    for (int trial = 0; trial < 100; ++trial) {
      std::string mutant = *dump;
      // A handful of flips per trial, anywhere (quotes, braces, digits,
      // newlines — newline flips join or split lines).
      for (int f = 0; f < 4; ++f) {
        const std::size_t pos = rng.pick_index(mutant.size());
        mutant[pos] = static_cast<char>(
            static_cast<unsigned char>(mutant[pos]) ^
            (1u << rng.pick_index(8)));
      }
      expect_survives(mutant, "byte flips");
    }
  }
}

// -------------------------------------- fault-schedule loader robustness

TEST(FaultScheduleFuzz, MalformedCorpusIsRejectedNotCrashed) {
  // Every malformed schedule must surface as CheckError with the loader's
  // diagnostic — never a crash, never a silently half-parsed schedule.
  const MeshGeometry mesh(10, 6);
  const std::vector<std::pair<const char*, const char*>> corpus = {
      {"bogus 0.1 3 E down\n", "unknown keyword"},
      {"link\n", "missing every field"},
      {"link 0.1 3\n", "missing direction and action"},
      {"link 0.1 3 E\n", "missing action"},
      {"link abc 3 E down\n", "unparsable time"},
      {"link -0.5 3 E down\n", "negative time"},
      {"link 0.1 notanum E down\n", "unparsable tile"},
      {"link 0.1 60 E down\n", "tile out of range (60 on a 10x6 mesh)"},
      {"link 0.1 -1 E down\n", "negative tile"},
      {"link 0.1 3 Q down\n", "bad direction"},
      {"link 0.1 3 L down\n", "local is not a link direction"},
      {"link 0.1 9 E down\n", "east edge link points off-mesh"},
      {"link 0.1 0 W down\n", "west edge link points off-mesh"},
      {"link 0.1 3 E sideways\n", "bad action"},
      {"router 0.1 99 down\n", "router out of range"},
      {"router 0.1 7 explode\n", "bad router action"},
      {"router 0.1 7\n", "missing router action"},
      {"link 0.5 3 E down\nlink 0.1 4 E down\n", "out-of-order times"},
      {"link 0.1 3 E down extra-token\n", "trailing garbage"},
  };
  for (const auto& [text, what] : corpus) {
    EXPECT_THROW(fault::schedule_from_text(text, mesh), CheckError)
        << what << " in: " << text;
  }

  // Duplicate link ids (same physical link named from both endpoints,
  // repeated downs) are semantically redundant but syntactically fine:
  // the loader accepts them and the schedule validates.
  const fault::FaultSchedule dup = fault::schedule_from_text(
      "link 0.1 3 E down\n"
      "link 0.1 4 W down\n"
      "link 0.2 3 E down\n",
      mesh);
  EXPECT_EQ(dup.events.size(), 3u);
  dup.validate(mesh);
}

TEST(FaultScheduleFuzz, RandomMutationsNeverCrashTheLoader) {
  const MeshGeometry mesh(10, 6);
  const std::string valid =
      "# scenario\n"
      "link 0.001 7 E down\n"
      "router 0.002 13 down\n"
      "link 0.004 7 E up\n"
      "router 0.010 13 up\n";
  // The pristine text parses; every mutant either parses or throws
  // CheckError. Anything else (crash, other exception) fails the test.
  EXPECT_NO_THROW(fault::schedule_from_text(valid, mesh));
  Rng rng(777);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutant = valid;
    const int flips = 1 + static_cast<int>(rng.pick_index(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.pick_index(mutant.size());
      mutant[pos] = static_cast<char>(
          static_cast<unsigned char>(mutant[pos]) ^
          (1u << rng.pick_index(8)));
    }
    try {
      const fault::FaultSchedule s = fault::schedule_from_text(mutant, mesh);
      s.validate(mesh);  // whatever parsed must also be self-consistent
    } catch (const CheckError&) {
      // rejected cleanly — fine
    }
  }
}

// ------------------------------------- topology file-loader robustness

TEST(TopologyFileFuzz, MalformedCorpusIsRejectedWithAReason) {
  // Every malformed topology file must surface as CheckError carrying
  // the loader's diagnostic — never a crash, never a silently
  // half-built topology.
  const std::vector<std::pair<const char*, const char*>> corpus = {
      {"", "empty file"},
      {"link 0 1\n", "link before tiles"},
      {"tiles\n", "missing tile count"},
      {"tiles zero\n", "unparsable tile count"},
      {"tiles 0\nlink 0 1\n", "zero tiles"},
      {"tiles 1\n", "single tile cannot be connected"},
      {"tiles 2000\n", "tile count over the loader cap"},
      {"tiles -4\n", "negative tile count"},
      {"tiles 4\ntiles 4\nlink 0 1\n", "duplicate tiles line"},
      {"tiles 4\nlink 0 1\nlink 1 2\n", "disconnected (tile 3 isolated)"},
      {"tiles 4\nlink 0 1\nlink 2 3\n", "two components"},
      {"tiles 4\nlink 0 0\nlink 0 1\nlink 1 2\nlink 2 3\n", "self-loop"},
      {"tiles 4\nlink 0 1\nlink 0 1\nlink 1 2\nlink 2 3\n",
       "duplicate edge"},
      {"tiles 4\nlink 1 0\nlink 0 1\nlink 1 2\nlink 2 3\n",
       "duplicate edge, reversed"},
      {"tiles 4\nlink 0 4\n", "endpoint out of range"},
      {"tiles 4\nlink -1 2\n", "negative endpoint"},
      {"tiles 4\nlink 0\n", "missing endpoint"},
      {"tiles 4\nlink 0 1 2\n", "trailing garbage on link line"},
      {"tiles 4\nlink a b\n", "unparsable endpoints"},
      {"tiles 4\nwire 0 1\n", "unknown keyword"},
      {"tiles 4\nlink 0 1", "truncated final line"},
  };
  for (const auto& [text, what] : corpus) {
    try {
      noc::Topology::from_text(text, "<fuzz>");
      FAIL() << "accepted " << what << " in: " << text;
    } catch (const CheckError& e) {
      // The reason must name the source so multi-file experiments can
      // tell which topology file is broken.
      EXPECT_NE(std::string(e.what()).find("<fuzz>"), std::string::npos)
          << what;
    }
  }
}

TEST(TopologyFileFuzz, TruncationsNeverCrashTheLoader) {
  const std::string valid =
      "# 8-tile ring with a chord\n"
      "tiles 8\n"
      "link 0 1\nlink 1 2\nlink 2 3\nlink 3 4\n"
      "link 4 5\nlink 5 6\nlink 6 7\nlink 7 0\n"
      "link 0 4\n";
  EXPECT_NO_THROW(noc::Topology::from_text(valid, "<trunc>"));
  // Every prefix either parses (a shorter but still connected graph) or
  // is rejected with CheckError; nothing else may escape.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    try {
      const auto topo =
          noc::Topology::from_text(valid.substr(0, len), "<trunc>");
      EXPECT_EQ(topo->tile_count(), 8);
    } catch (const CheckError&) {
      // rejected cleanly — fine
    }
  }
}

TEST(TopologyFileFuzz, RandomByteFlipsNeverCrashTheLoader) {
  const std::string valid =
      "# fuzz seed graph\n"
      "tiles 12\n"
      "link 0 1\nlink 1 2\nlink 2 3\nlink 3 4\nlink 4 5\n"
      "link 5 6\nlink 6 7\nlink 7 8\nlink 8 9\nlink 9 10\n"
      "link 10 11\nlink 11 0\nlink 0 6\nlink 3 9\n";
  Rng rng(42424242);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutant = valid;
    const int flips = 1 + static_cast<int>(rng.pick_index(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.pick_index(mutant.size());
      mutant[pos] = static_cast<char>(
          static_cast<unsigned char>(mutant[pos]) ^
          (1u << rng.pick_index(8)));
    }
    try {
      const auto topo = noc::Topology::from_text(mutant, "<flip>");
      // Whatever parsed must be a usable connected topology: the
      // deadlock-free table builder has to accept it.
      const noc::RoutingTable table = noc::RoutingTable::build(*topo);
      table.verify(*topo);
    } catch (const CheckError&) {
      // rejected cleanly — fine
    }
  }
}

TEST(TopologyFileFuzz, MissingFileIsRejectedByName) {
  try {
    noc::Topology::from_file("/nonexistent/fuzz.topo");
    FAIL() << "missing file accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/fuzz.topo"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace parm
