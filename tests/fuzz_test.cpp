// Randomized (seeded, reproducible) stress tests of stateful components:
//  - Platform occupy/migrate/release fuzz against a reference model;
//  - EDF queue fuzz against a sorted-reference implementation;
//  - benchmark-suite profile sanity across every benchmark (TEST_P).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "appmodel/application.hpp"
#include "cmp/platform.hpp"
#include "common/rng.hpp"
#include "power/technology.hpp"
#include "power/vf_model.hpp"
#include "sched/edf.hpp"

namespace parm {
namespace {

// ------------------------------------------------------ platform fuzzing

TEST(PlatformFuzz, RandomOpsPreserveInvariants) {
  cmp::Platform platform{cmp::PlatformConfig{}};
  Rng rng(20260707);

  // Reference model: app -> set of tiles; tile -> app; domain vdd.
  std::map<cmp::AppInstanceId, std::vector<TileId>> ref_apps;
  std::map<TileId, cmp::AppInstanceId> ref_tiles;
  cmp::AppInstanceId next_app = 1;
  const std::vector<double> vdds = {0.4, 0.5, 0.6, 0.7, 0.8};

  for (int step = 0; step < 3000; ++step) {
    const double op = rng.uniform01();
    if (op < 0.45) {
      // Occupy: a random free domain entirely, at a random vdd.
      const auto free = platform.free_domains();
      if (free.empty()) continue;
      const DomainId d = free[rng.pick_index(free.size())];
      const double vdd = vdds[rng.pick_index(vdds.size())];
      std::vector<cmp::Platform::Placement> places;
      const auto tiles = platform.mesh().domain_tiles(d);
      for (int k = 0; k < 4; ++k) {
        places.push_back({k, tiles[static_cast<std::size_t>(k)],
                          rng.uniform(0.1, 0.9)});
      }
      platform.occupy(next_app, places, vdd);
      for (const auto& p : places) {
        ref_apps[next_app].push_back(p.tile);
        ref_tiles[p.tile] = next_app;
      }
      ++next_app;
    } else if (op < 0.75) {
      // Release a random live app.
      if (ref_apps.empty()) continue;
      auto it = ref_apps.begin();
      std::advance(it, static_cast<long>(rng.pick_index(ref_apps.size())));
      platform.release(it->first);
      for (TileId t : it->second) ref_tiles.erase(t);
      ref_apps.erase(it);
    } else {
      // Migrate one task of a random app to a random free tile whose
      // domain is free (guaranteed-compatible move).
      if (ref_apps.empty()) continue;
      auto it = ref_apps.begin();
      std::advance(it, static_cast<long>(rng.pick_index(ref_apps.size())));
      const auto free_domains = platform.free_domains();
      if (free_domains.empty() || it->second.empty()) continue;
      const TileId from =
          it->second[rng.pick_index(it->second.size())];
      const TileId to = platform.mesh().domain_tiles(
          free_domains[rng.pick_index(free_domains.size())])[0];
      platform.migrate(it->first, from, to);
      *std::find(it->second.begin(), it->second.end(), from) = to;
      ref_tiles.erase(from);
      ref_tiles[to] = it->first;
    }

    // Invariants after every operation.
    std::size_t occupied = 0;
    for (TileId t = 0; t < platform.mesh().tile_count(); ++t) {
      const auto& asg = platform.tile(t);
      if (asg.app == cmp::kNoApp) {
        EXPECT_EQ(ref_tiles.count(t), 0u);
      } else {
        ++occupied;
        ASSERT_EQ(ref_tiles.at(t), asg.app);
        // Occupied tile implies a powered domain.
        EXPECT_TRUE(
            platform.domain_vdd(platform.mesh().domain_of(t)).has_value());
      }
    }
    EXPECT_EQ(occupied, ref_tiles.size());
    EXPECT_EQ(platform.free_tile_count(),
              platform.mesh().tile_count() -
                  static_cast<std::int32_t>(occupied));
  }
}

// ----------------------------------------------------------- EDF fuzzing

TEST(EdfFuzz, MatchesReferenceSortUnderRandomOps) {
  Rng rng(424242);
  sched::EdfQueue queue;
  // Reference: multiset-like vector of (deadline, seq, id), popped in
  // (deadline, insertion-order) order.
  std::vector<std::tuple<double, int, std::int64_t>> ref;
  int seq = 0;
  std::int64_t next_id = 0;

  for (int step = 0; step < 5000; ++step) {
    if (ref.empty() || rng.bernoulli(0.6)) {
      const double deadline = rng.uniform(0.0, 10.0);
      queue.push(next_id, deadline);
      ref.emplace_back(deadline, seq++, next_id);
      ++next_id;
    } else {
      const auto best = std::min_element(ref.begin(), ref.end());
      const auto popped = queue.pop();
      EXPECT_EQ(popped.id, std::get<2>(*best));
      EXPECT_DOUBLE_EQ(popped.deadline_s, std::get<0>(*best));
      ref.erase(best);
    }
    EXPECT_EQ(queue.size(), ref.size());
  }
}

// ------------------------------------------- per-benchmark profile sanity

class BenchmarkSuiteSweep
    : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchmarkSuiteSweep, ProfileIsWellFormedAtEveryDop) {
  const auto& bench = appmodel::benchmark_by_name(GetParam());
  const appmodel::ApplicationProfile profile(bench, 20260707);
  const power::VoltageFrequencyModel vf(power::technology_node(7));

  for (int dop : profile.dops()) {
    const auto& v = profile.variant(dop);
    ASSERT_EQ(static_cast<int>(v.tasks.size()), dop);
    EXPECT_TRUE(v.graph.validate());
    EXPECT_GT(v.critical_path_cycles, 0.0);

    double total_work = 0.0;
    for (const auto& t : v.tasks) {
      EXPECT_GT(t.work_cycles, 0.0);
      EXPECT_GE(t.activity, 0.05);
      EXPECT_LE(t.activity, 0.98);
      total_work += t.work_cycles;
    }
    // Critical path can never exceed the total work nor undercut the
    // biggest single task.
    double max_task = 0.0;
    for (const auto& t : v.tasks) max_task = std::max(max_task, t.work_cycles);
    EXPECT_LE(max_task, total_work);
    EXPECT_GT(v.critical_path_cycles, 0.5 * max_task);

    // WCET is positive and finite at every DVS level.
    for (double vdd : {0.4, 0.5, 0.6, 0.7, 0.8}) {
      const double w = profile.wcet_seconds(vdd, dop, vf);
      EXPECT_GT(w, 0.0);
      EXPECT_LT(w, 100.0);
    }
  }
  // The high-activity fraction should reflect the benchmark's class:
  // compute-intensive suites are High-dominated.
  if (bench.kind == appmodel::WorkloadKind::ComputeIntensive) {
    EXPECT_GT(profile.variant(bench.max_dop).high_activity_fraction(),
              0.75);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllThirteen, BenchmarkSuiteSweep,
    ::testing::Values("cholesky", "fft", "raytrace", "dedup", "canneal",
                      "vips", "radix", "swaptions", "fluidanimate",
                      "streamcluster", "blackscholes", "bodytrack",
                      "radiosity"));

}  // namespace
}  // namespace parm
