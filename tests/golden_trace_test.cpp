// Golden-trace regression test.
//
// Runs the fixed seed-42 mixed workload under PARM+PANR for 40 control
// epochs and folds every telemetry sample into an FNV-1a hash *chain*
// (one chained digest per epoch, plus a final digest over the SimResult).
// The chain is compared against tests/golden/seed42_mixed_telemetry.txt;
// because each link depends on all previous samples, the first mismatching
// epoch pinpoints exactly where a behavioral change entered the run, and
// the test prints that epoch's full actual sample as a readable
// first-divergence report.
//
// When simulator behavior changes intentionally, regenerate the file:
//   ./build/tests/golden_trace_test --update-golden
//   (or PARM_UPDATE_GOLDEN=1 ./build/tests/golden_trace_test)
//
// The digests fold IEEE-754 bit patterns, so they are exact but assume one
// toolchain/libm: regenerate the golden file when changing compilers.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiments.hpp"
#include "sim/system_sim.hpp"

#ifndef PARM_GOLDEN_DIR
#error "PARM_GOLDEN_DIR must point at tests/golden"
#endif

namespace parm {

bool g_update_golden = false;

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix_f64(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t fold_sample(std::uint64_t h, const sim::EpochSample& s) {
  h = mix_f64(h, s.time_s);
  h = mix_f64(h, s.peak_psn_percent);
  h = mix_f64(h, s.avg_psn_percent);
  h = mix_f64(h, s.chip_power_w);
  h = mix(h, static_cast<std::uint64_t>(s.running_apps));
  h = mix(h, static_cast<std::uint64_t>(s.queued_apps));
  h = mix(h, static_cast<std::uint64_t>(s.busy_tiles));
  h = mix_f64(h, s.noc_latency_cycles);
  h = mix(h, static_cast<std::uint64_t>(s.ve_count));
  h = mix(h, static_cast<std::uint64_t>(s.pdn_solves));
  h = mix(h, static_cast<std::uint64_t>(s.mapper_candidates));
  h = mix(h, static_cast<std::uint64_t>(s.panr_reroutes));
  return h;
}

std::uint64_t fold_result(std::uint64_t h, const sim::SimResult& r) {
  h = mix_f64(h, r.makespan_s);
  h = mix_f64(h, r.peak_psn_percent);
  h = mix_f64(h, r.avg_psn_percent);
  h = mix(h, static_cast<std::uint64_t>(r.completed_count));
  h = mix(h, static_cast<std::uint64_t>(r.dropped_count));
  h = mix(h, r.total_ve_count);
  h = mix_f64(h, r.avg_noc_latency_cycles);
  h = mix_f64(h, r.peak_chip_power_w);
  h = mix_f64(h, r.avg_chip_power_w);
  h = mix_f64(h, r.total_energy_j);
  h = mix(h, r.timed_out ? 1u : 0u);
  for (const sim::AppOutcome& o : r.apps) {
    h = mix(h, static_cast<std::uint64_t>(o.id));
    h = mix(h, (o.admitted ? 1u : 0u) | (o.completed ? 2u : 0u) |
                   (o.dropped ? 4u : 0u));
    h = mix_f64(h, o.admit_s);
    h = mix_f64(h, o.finish_s);
    h = mix_f64(h, o.vdd);
    h = mix(h, static_cast<std::uint64_t>(o.dop));
    h = mix(h, static_cast<std::uint64_t>(o.ve_count));
  }
  return h;
}

std::string hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string describe(const sim::EpochSample& s) {
  std::ostringstream os;
  os.precision(17);
  os << "time_s=" << s.time_s << " peak_psn=" << s.peak_psn_percent
     << " avg_psn=" << s.avg_psn_percent << " chip_power="
     << s.chip_power_w << " running=" << s.running_apps << " queued="
     << s.queued_apps << " busy_tiles=" << s.busy_tiles << " noc_latency="
     << s.noc_latency_cycles << " ves=" << s.ve_count << " solves="
     << s.pdn_solves << " candidates=" << s.mapper_candidates
     << " reroutes=" << s.panr_reroutes;
  return os.str();
}

struct GoldenRun {
  std::vector<std::uint64_t> chain;  ///< chained digest after each epoch
  std::uint64_t result_digest = 0;
  std::vector<sim::EpochSample> samples;  ///< only filled for a live run
};

GoldenRun run_reference() {
  sim::SimConfig cfg = exp::default_sim_config();
  cfg.framework.mapping = "PARM";
  cfg.framework.routing = "PANR";
  cfg.max_sim_time_s = 0.040;
  cfg.record_telemetry = true;
  cfg.seed = 42;

  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Mixed;
  seq.app_count = 6;
  seq.inter_arrival_s = 0.005;
  seq.seed = 42;

  sim::SystemSimulator simulator(cfg, appmodel::make_sequence(seq));
  const sim::SimResult r = simulator.run();

  GoldenRun g;
  std::uint64_t h = kFnvOffset;
  for (const sim::EpochSample& s : r.telemetry.samples()) {
    h = fold_sample(h, s);
    g.chain.push_back(h);
  }
  g.result_digest = fold_result(h, r);
  g.samples = r.telemetry.samples();
  return g;
}

const char* golden_path() {
  return PARM_GOLDEN_DIR "/seed42_mixed_telemetry.txt";
}

void write_golden(const GoldenRun& g) {
  std::ofstream out(golden_path());
  ASSERT_TRUE(out) << "cannot write " << golden_path();
  out << "# Golden telemetry digest: seed-42 mixed workload, PARM+PANR, "
         "40 epochs.\n"
      << "# One FNV-1a chain value per epoch; each link depends on all\n"
      << "# previous samples, so the first mismatch localizes a "
         "divergence.\n"
      << "# Regenerate: ./build/tests/golden_trace_test --update-golden\n"
      << "epochs " << g.chain.size() << "\n";
  for (std::size_t i = 0; i < g.chain.size(); ++i) {
    out << i << " " << hex(g.chain[i]) << "\n";
  }
  out << "result " << hex(g.result_digest) << "\n";
}

bool read_golden(GoldenRun& g, std::string& error) {
  std::ifstream in(golden_path());
  if (!in) {
    error = std::string("missing golden file ") + golden_path();
    return false;
  }
  std::string line;
  std::size_t epochs = 0;
  bool have_epochs = false, have_result = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "epochs") {
      ls >> epochs;
      have_epochs = true;
    } else if (key == "result") {
      std::string h;
      ls >> h;
      g.result_digest = std::stoull(h, nullptr, 16);
      have_result = true;
    } else {
      std::string h;
      ls >> h;
      g.chain.push_back(std::stoull(h, nullptr, 16));
    }
  }
  if (!have_epochs || !have_result || g.chain.size() != epochs) {
    error = std::string("malformed golden file ") + golden_path();
    return false;
  }
  return true;
}

TEST(GoldenTrace, Seed42MixedTelemetryMatchesGoldenDigest) {
  const GoldenRun actual = run_reference();

  if (g_update_golden) {
    write_golden(actual);
    std::cout << "golden file regenerated: " << golden_path() << " ("
              << actual.chain.size() << " epochs)\n";
    return;
  }

  GoldenRun expected;
  std::string error;
  ASSERT_TRUE(read_golden(expected, error))
      << error << "\nregenerate with: golden_trace_test --update-golden";

  if (expected.chain.size() != actual.chain.size()) {
    FAIL() << "epoch count diverged: golden has " << expected.chain.size()
           << " epochs, this run produced " << actual.chain.size()
           << " — the run's length itself changed.";
  }
  for (std::size_t i = 0; i < actual.chain.size(); ++i) {
    if (actual.chain[i] != expected.chain[i]) {
      // Readable first-divergence report: everything before epoch i
      // matched, so the behavioral change entered at exactly epoch i.
      FAIL() << "golden-trace divergence at epoch " << i << ":\n"
             << "  expected chain " << hex(expected.chain[i]) << "\n"
             << "  actual   chain " << hex(actual.chain[i]) << "\n"
             << "  all " << i << " earlier epochs match\n"
             << "  actual sample: " << describe(actual.samples[i])
             << "\nIf this change is intentional, regenerate with "
                "golden_trace_test --update-golden";
    }
  }
  EXPECT_EQ(hex(actual.result_digest), hex(expected.result_digest))
      << "per-epoch telemetry matches but the final SimResult digest "
         "diverged";
}

}  // namespace
}  // namespace parm

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      parm::g_update_golden = true;
    }
  }
  if (std::getenv("PARM_UPDATE_GOLDEN") != nullptr) {
    parm::g_update_golden = true;
  }
  return RUN_ALL_TESTS();
}
