// Tests for the NoC latency-vs-load characterization utility.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "noc/load_sweep.hpp"

namespace parm::noc {
namespace {

LoadSweepConfig sweep_cfg(std::initializer_list<double> loads) {
  LoadSweepConfig cfg;
  cfg.loads = loads;
  cfg.window = WindowConfig{256, 1024};
  return cfg;
}

TEST(LoadSweep, LatencyMonotoneUnderUniformTraffic) {
  const MeshGeometry mesh(8, 4);
  Rng rng(5);
  const auto flows_for = [&](double load) {
    Rng local(42);  // same pattern per load, scaled rate
    return uniform_random_flows(mesh, load, local);
  };
  const auto sweep = latency_load_sweep(
      mesh, "XY", flows_for, sweep_cfg({0.01, 0.05, 0.15, 0.3, 0.5}));
  ASSERT_EQ(sweep.size(), 5u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].avg_latency_cycles,
              sweep[i - 1].avg_latency_cycles * 0.95);
  }
  // Accepted throughput grows with offered load until saturation.
  EXPECT_GT(sweep[2].accepted_flits_per_cycle,
            sweep[0].accepted_flits_per_cycle * 2.0);
}

TEST(LoadSweep, SaturationLoadDetected) {
  const MeshGeometry mesh(8, 4);
  const auto flows_for = [&](double load) {
    Rng local(42);
    return uniform_random_flows(mesh, load, local);
  };
  const auto sweep = latency_load_sweep(
      mesh, "XY", flows_for,
      sweep_cfg({0.01, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7}));
  const double sat = saturation_load(sweep, 4.0);
  // A 8x4 mesh saturates well before 0.7 flits/cycle/tile uniform.
  EXPECT_GT(sat, 0.01);
  EXPECT_LT(sat, 0.7);
}

TEST(LoadSweep, AdaptiveRoutingSaturatesNoEarlierThanXyOnTranspose) {
  // Transpose concentrates XY traffic on the diagonal; the adaptive
  // west-first schemes can spread it and should not saturate earlier.
  const MeshGeometry mesh(6, 6);
  const auto flows_for = [&](double load) {
    return transpose_flows(mesh, load);
  };
  const auto cfg = sweep_cfg({0.02, 0.1, 0.2, 0.35, 0.5, 0.75});
  const double sat_xy =
      saturation_load(latency_load_sweep(mesh, "XY", flows_for, cfg));
  const double sat_icon =
      saturation_load(latency_load_sweep(mesh, "ICON", flows_for, cfg));
  EXPECT_GE(sat_icon, sat_xy * 0.99);
}

TEST(LoadSweep, Validation) {
  const MeshGeometry mesh(4, 4);
  const auto flows_for = [&](double load) {
    Rng local(1);
    return uniform_random_flows(mesh, load, local);
  };
  EXPECT_THROW(
      latency_load_sweep(mesh, "XY", flows_for, sweep_cfg({})),
      CheckError);
  EXPECT_THROW(saturation_load({}, 4.0), CheckError);
  const auto sweep =
      latency_load_sweep(mesh, "XY", flows_for, sweep_cfg({0.01, 0.02}));
  EXPECT_THROW(saturation_load(sweep, 0.5), CheckError);
}

}  // namespace
}  // namespace parm::noc
