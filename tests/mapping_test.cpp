// Unit tests for parm_mapping: Algorithm-2 clustering invariants, the
// PARM PSN-aware mapper, and the HM harmonic baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "appmodel/application.hpp"
#include "appmodel/benchmarks.hpp"
#include "mapping/clustering.hpp"
#include "mapping/hm_mapper.hpp"
#include "mapping/parm_mapper.hpp"

namespace parm::mapping {
namespace {

using appmodel::ApplicationProfile;
using appmodel::benchmark_by_name;
using appmodel::DopVariant;
using appmodel::TaskIndex;
using cmp::Platform;
using cmp::PlatformConfig;

const DopVariant& variant_of(const char* bench, int dop,
                             std::uint64_t seed = 99) {
  static std::vector<std::unique_ptr<ApplicationProfile>> keep;
  keep.push_back(std::make_unique<ApplicationProfile>(
      benchmark_by_name(bench), seed));
  return keep.back()->variant(dop);
}

// -------------------------------------------------------------- clustering

TEST(Clustering, EveryTaskInExactlyOneCluster) {
  for (int dop : {4, 8, 12, 16}) {
    const DopVariant& v = variant_of("cholesky", dop);
    const auto clusters = cluster_tasks(v);
    std::vector<int> seen(static_cast<std::size_t>(dop), 0);
    for (const auto& c : clusters) {
      EXPECT_LE(c.tasks.size(), 4u);
      EXPECT_FALSE(c.tasks.empty());
      for (TaskIndex t : c.tasks) ++seen[static_cast<std::size_t>(t)];
    }
    for (int s : seen) EXPECT_EQ(s, 1);
  }
}

TEST(Clustering, AtMostOneMixedClusterForMultipleOf4Dops) {
  for (const char* bench : {"cholesky", "fft", "swaptions", "radix"}) {
    for (int dop : {8, 16}) {
      const DopVariant& v = variant_of(bench, dop);
      const auto clusters = cluster_tasks(v);
      int mixed = 0;
      for (const auto& c : clusters) mixed += c.mixed_activity;
      EXPECT_LE(mixed, 1) << bench << " dop=" << dop;
    }
  }
}

TEST(Clustering, NonMixedClustersAreActivityPure) {
  const DopVariant& v = variant_of("radix", 16);
  for (const auto& c : cluster_tasks(v)) {
    if (c.mixed_activity) continue;
    const auto cls =
        v.tasks[static_cast<std::size_t>(c.tasks[0])].activity_class();
    for (TaskIndex t : c.tasks) {
      EXPECT_EQ(v.tasks[static_cast<std::size_t>(t)].activity_class(), cls);
    }
  }
}

TEST(Clustering, HeavyCommunicatorsShareAClusterWhenSameClass) {
  // Hand-built variant: one dominant edge between two High tasks must put
  // them in the same cluster.
  DopVariant v;
  v.dop = 8;
  v.tasks.resize(8);
  for (auto& t : v.tasks) {
    t.work_cycles = 1e6;
    t.activity = 0.9;  // all High
  }
  std::vector<appmodel::ApgEdge> edges{{2, 6, 100.0}, {0, 1, 1.0},
                                       {3, 4, 1.0},   {5, 7, 1.0}};
  v.graph = appmodel::TaskGraph(8, edges);
  const auto clusters = cluster_tasks(v);
  // Tasks 2 and 6 entered the High list first (heaviest edge), so they
  // land in the first cluster together.
  auto in_same = [&](TaskIndex a, TaskIndex b) {
    for (const auto& c : clusters) {
      const bool ha =
          std::find(c.tasks.begin(), c.tasks.end(), a) != c.tasks.end();
      const bool hb =
          std::find(c.tasks.begin(), c.tasks.end(), b) != c.tasks.end();
      if (ha || hb) return ha && hb;
    }
    return false;
  };
  EXPECT_TRUE(in_same(2, 6));
}

TEST(Clustering, InterClusterVolume) {
  DopVariant v;
  v.dop = 8;
  v.tasks.resize(8);
  for (auto& t : v.tasks) {
    t.work_cycles = 1e6;
    t.activity = 0.9;
  }
  v.graph = appmodel::TaskGraph(
      8, {{0, 4, 10.0}, {1, 5, 20.0}, {0, 1, 5.0}});
  TaskCluster a{{0, 1}, false};
  TaskCluster b{{4, 5}, false};
  EXPECT_DOUBLE_EQ(inter_cluster_volume(v, a, b), 30.0);
}

// ------------------------------------------------------------- PARM mapper

class ParmMapperTest : public ::testing::Test {
 protected:
  Platform platform_{PlatformConfig{}};
  ParmMapper mapper_;
};

TEST_F(ParmMapperTest, ProducesValidDomainAlignedMappings) {
  for (const char* bench : {"fft", "cholesky", "swaptions"}) {
    for (int dop : {4, 8, 16}) {
      const DopVariant& v = variant_of(bench, dop);
      const auto m = mapper_.map(platform_, v);
      ASSERT_TRUE(m.has_value()) << bench << " dop=" << dop;
      EXPECT_TRUE(validate_mapping(platform_, v, *m));
    }
  }
}

TEST_F(ParmMapperTest, DomainsAreExclusivePerCluster) {
  const DopVariant& v = variant_of("fft", 16);
  const auto m = mapper_.map(platform_, v);
  ASSERT_TRUE(m.has_value());
  // Group placements by domain; each domain must hold tasks of one
  // cluster only — in particular no more than 4 tasks.
  std::map<DomainId, std::vector<TaskIndex>> by_domain;
  for (const auto& p : *m) {
    by_domain[platform_.mesh().domain_of(p.tile)].push_back(p.task_index);
  }
  EXPECT_EQ(by_domain.size(), 4u);  // 16 tasks → 4 clusters
  for (const auto& [d, tasks] : by_domain) {
    EXPECT_LE(tasks.size(), 4u);
  }
}

TEST_F(ParmMapperTest, SameActivityTasksAdjacentWithinDomain) {
  // For a 2H+2L cluster, the two same-class pairs must be 1 hop apart and
  // the unlike pairs pushed to >= 1 hop (diagonal preferred), per Fig. 5.
  DopVariant v;
  v.dop = 4;
  v.tasks.resize(4);
  v.tasks[0].activity = v.tasks[1].activity = 0.9;  // High
  v.tasks[2].activity = v.tasks[3].activity = 0.2;  // Low
  for (auto& t : v.tasks) t.work_cycles = 1e6;
  v.graph = appmodel::TaskGraph(
      4, {{0, 1, 5.0}, {2, 3, 5.0}, {0, 2, 1.0}, {1, 3, 1.0}});
  const auto m = mapper_.map(platform_, v);
  ASSERT_TRUE(m.has_value());
  std::vector<TileId> tile_of(4);
  for (const auto& p : *m) {
    tile_of[static_cast<std::size_t>(p.task_index)] = p.tile;
  }
  EXPECT_EQ(platform_.mesh().hop_distance(tile_of[0], tile_of[1]), 1);
  EXPECT_EQ(platform_.mesh().hop_distance(tile_of[2], tile_of[3]), 1);
}

TEST_F(ParmMapperTest, FailsWhenDomainsInsufficient) {
  // Occupy 13 of 15 domains; a 16-task app needs 4 clusters → fail.
  for (DomainId d = 0; d < 13; ++d) {
    const auto tiles = platform_.mesh().domain_tiles(d);
    platform_.occupy(100 + d, {{0, tiles[0], 0.5}}, 0.4);
  }
  const DopVariant& v = variant_of("fft", 16);
  EXPECT_FALSE(mapper_.map(platform_, v).has_value());
  // An 8-task app (2 clusters) still fits.
  const DopVariant& v8 = variant_of("fft", 8);
  EXPECT_TRUE(mapper_.map(platform_, v8).has_value());
}

TEST_F(ParmMapperTest, PlacesClustersCompactly) {
  const DopVariant& v = variant_of("fft", 16);
  const auto m = mapper_.map(platform_, v);
  ASSERT_TRUE(m.has_value());
  // The used domains should form a tight region: max pairwise domain
  // distance well below the mesh diameter (4+2=6 on the 5x3 domain grid).
  std::set<DomainId> used;
  for (const auto& p : *m) used.insert(platform_.mesh().domain_of(p.tile));
  int maxd = 0;
  for (DomainId a : used) {
    for (DomainId b : used) {
      maxd = std::max(maxd, platform_.mesh().domain_distance(a, b));
    }
  }
  EXPECT_LE(maxd, 3);
}

// --------------------------------------------------------------- HM mapper

class HmMapperTest : public ::testing::Test {
 protected:
  Platform platform_{PlatformConfig{}};
  HarmonicMapper mapper_;
};

TEST_F(HmMapperTest, ProducesValidMappings) {
  for (int dop : {4, 8, 16}) {
    const DopVariant& v = variant_of("radix", dop);
    const auto m = mapper_.map(platform_, v);
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(validate_mapping(platform_, v, *m));
  }
}

TEST_F(HmMapperTest, SpreadsHighActivityTasks) {
  // All-High variant: HM must place tasks far apart, PARM packs them.
  DopVariant v;
  v.dop = 8;
  v.tasks.resize(8);
  for (auto& t : v.tasks) {
    t.activity = 0.9;
    t.work_cycles = 1e6;
  }
  v.graph = appmodel::TaskGraph(8, {{0, 1, 1.0}});
  const auto hm = mapper_.map(platform_, v);
  const auto parm = ParmMapper().map(platform_, v);
  ASSERT_TRUE(hm.has_value());
  ASSERT_TRUE(parm.has_value());
  auto min_pair_distance = [&](const Mapping& m) {
    int best = 1000;
    for (std::size_t i = 0; i < m.size(); ++i) {
      for (std::size_t j = i + 1; j < m.size(); ++j) {
        best = std::min(best, platform_.mesh().hop_distance(m[i].tile,
                                                            m[j].tile));
      }
    }
    return best;
  };
  EXPECT_GE(min_pair_distance(*hm), 3);
  EXPECT_EQ(min_pair_distance(*parm), 1);
}

TEST_F(HmMapperTest, ParmBeatsHmOnCommunicationCost) {
  // The paper's central criticism of HM: scattering inflates total
  // communication distance.
  for (const char* bench : {"fft", "cholesky", "canneal"}) {
    const DopVariant& v = variant_of(bench, 16);
    const auto hm = mapper_.map(platform_, v);
    const auto parm = ParmMapper().map(platform_, v);
    ASSERT_TRUE(hm && parm);
    EXPECT_LT(communication_cost(platform_.mesh(), v, *parm),
              communication_cost(platform_.mesh(), v, *hm))
        << bench;
  }
}

TEST_F(HmMapperTest, FailsWhenTilesInsufficient) {
  // Fill 50 tiles; a 16-task app cannot fit in the 10 left.
  std::vector<Platform::Placement> filler;
  for (TileId t = 0; t < 50; ++t) filler.push_back({0, t, 0.3});
  platform_.occupy(1, filler, 0.4);
  const DopVariant& v = variant_of("fft", 16);
  EXPECT_FALSE(mapper_.map(platform_, v).has_value());
  const DopVariant& v8 = variant_of("fft", 8);
  EXPECT_TRUE(mapper_.map(platform_, v8).has_value());
}

// -------------------------------------------------------------- validation

TEST(MappingValidation, CatchesDefects) {
  Platform platform{PlatformConfig{}};
  const DopVariant& v = variant_of("fft", 4);
  Mapping ok{{0, 0, 0.5}, {1, 1, 0.5}, {2, 2, 0.5}, {3, 3, 0.5}};
  EXPECT_TRUE(validate_mapping(platform, v, ok));
  Mapping dup_tile{{0, 0, 0.5}, {1, 0, 0.5}, {2, 2, 0.5}, {3, 3, 0.5}};
  EXPECT_FALSE(validate_mapping(platform, v, dup_tile));
  Mapping dup_task{{0, 0, 0.5}, {0, 1, 0.5}, {2, 2, 0.5}, {3, 3, 0.5}};
  EXPECT_FALSE(validate_mapping(platform, v, dup_task));
  Mapping missing{{0, 0, 0.5}};
  EXPECT_FALSE(validate_mapping(platform, v, missing));
}

TEST(MappingValidation, CommunicationCost) {
  Platform platform{PlatformConfig{}};
  DopVariant v;
  v.dop = 4;
  v.tasks.resize(4);
  for (auto& t : v.tasks) {
    t.work_cycles = 1;
    t.activity = 0.5;
  }
  v.graph = appmodel::TaskGraph(4, {{0, 1, 10.0}, {2, 3, 2.0}});
  // Tiles 0,1 adjacent (distance 1); tiles 2, 12 distance... mesh is
  // 10 wide: tile 2=(2,0), tile 12=(2,1) → distance 1.
  Mapping m{{0, 0, 0.5}, {1, 1, 0.5}, {2, 2, 0.5}, {3, 12, 0.5}};
  EXPECT_DOUBLE_EQ(communication_cost(platform.mesh(), v, m),
                   10.0 * 1 + 2.0 * 1);
}

}  // namespace
}  // namespace parm::mapping
