// Sharded NoC cycle-engine suite: the parallel path must be bit-identical
// to serial stepping at every shard count and under both an oblivious and
// the adaptive routing scheme, and the wormhole protocol invariants must
// hold cycle by cycle while the gang is running. This binary also runs
// under ThreadSanitizer in CI, which checks the ShardGang claim/complete
// protocol itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "snapshot/serializer.hpp"

namespace parm::noc {
namespace {

constexpr int kWidth = 8;
constexpr int kHeight = 4;
constexpr int kTiles = kWidth * kHeight;

NocConfig tight_cfg() {
  NocConfig cfg;
  cfg.buffer_depth = 4;
  cfg.flits_per_packet = 4;
  return cfg;
}

/// Deterministic saturating workload: two random packets per cycle. A
/// fresh Rng per run makes the injection sequence identical across
/// engines, so any divergence is the engine's fault.
Network::CycleHook make_hook(Rng& rng) {
  return [&rng](Network& n) {
    for (int k = 0; k < 2; ++k) {
      const TileId s = static_cast<TileId>(rng.next_below(kTiles));
      TileId d = s;
      while (d == s) d = static_cast<TileId>(rng.next_below(kTiles));
      n.inject_packet(s, d, static_cast<std::int32_t>(k));
    }
  };
}

std::vector<std::uint8_t> run_and_save(const char* algo, int shards) {
  const MeshGeometry mesh(kWidth, kHeight);
  Network net(mesh, tight_cfg(), make_routing(algo));
  net.set_shards(shards);
  Rng rng(99);
  std::vector<double> psn(static_cast<std::size_t>(kTiles));
  for (auto& x : psn) x = rng.uniform(0.0, 6.0);
  net.set_tile_psn(psn);  // exercises PANR's safety filter
  net.step_cycles(400, make_hook(rng));
  net.step_cycles(800);  // drain phase, no injection
  snapshot::Writer w;
  net.save(w);
  return w.bytes();
}

TEST(ShardedEngine, SaveBytesIdenticalAcrossShardCounts) {
  for (const char* algo : {"XY", "PANR"}) {
    SCOPED_TRACE(algo);
    const std::vector<std::uint8_t> reference = run_and_save(algo, 1);
    for (int shards : {2, 4, 8}) {
      SCOPED_TRACE(shards);
      EXPECT_EQ(run_and_save(algo, shards), reference);
    }
  }
}

TEST(ShardedEngine, WormholeInvariantsHoldUnderGang) {
  for (const char* algo : {"XY", "PANR"}) {
    for (int shards : {1, 2, 4, 8}) {
      SCOPED_TRACE(algo);
      SCOPED_TRACE(shards);
      const MeshGeometry mesh(kWidth, kHeight);
      const NocConfig cfg = tight_cfg();
      Network net(mesh, cfg, make_routing(algo));
      net.set_shards(shards);
      Rng rng(7);
      const Network::CycleHook hook = make_hook(rng);
      for (int c = 0; c < 200; ++c) {
        net.step_cycles(1, hook);
        for (TileId t = 0; t < mesh.tile_count(); ++t) {
          // Credit flow control: cardinal buffers never exceed depth.
          for (Direction d : kCardinalDirections) {
            ASSERT_LE(net.buffer_size(t, d),
                      static_cast<std::uint32_t>(cfg.buffer_depth));
          }
          // Wormhole allocation is a bijection while held: an output
          // owned by input `in` is exactly the output `in` is allocated.
          for (int out = 0; out < kPortCount; ++out) {
            const int in = net.output_owner(t, static_cast<Direction>(out));
            if (in >= 0) {
              ASSERT_EQ(net.allocated_output(t, static_cast<Direction>(in)),
                        out);
            }
          }
        }
        // O(1) in-flight accounting stays exact mid-flight.
        ASSERT_EQ(net.in_flight_flits(), net.in_flight_flits_scan());
      }
      // Drain: every packet completes and every tail released its path.
      net.step_cycles(12000);
      EXPECT_EQ(net.in_flight_flits(), 0u);
      EXPECT_EQ(net.total_delivered_flits(), net.total_injected_flits());
      for (TileId t = 0; t < mesh.tile_count(); ++t) {
        for (int p = 0; p < kPortCount; ++p) {
          EXPECT_EQ(net.output_owner(t, static_cast<Direction>(p)), -1);
          EXPECT_EQ(net.allocated_output(t, static_cast<Direction>(p)), -1);
        }
      }
    }
  }
}

TEST(ShardedEngine, SerialSnapshotRestoresIntoShardedEngineAndContinues) {
  // Save mid-flight from a serial network, restore into a sharded one,
  // and step both to completion: identical final snapshots.
  const MeshGeometry mesh(kWidth, kHeight);
  Network serial(mesh, tight_cfg(), make_routing("XY"));
  Rng rng(21);
  const Network::CycleHook hook = make_hook(rng);
  serial.step_cycles(150, hook);
  snapshot::Writer mid;
  serial.save(mid);

  Network sharded(mesh, tight_cfg(), make_routing("XY"));
  sharded.set_shards(4);
  snapshot::Reader r(mid.bytes());
  sharded.restore(r);
  EXPECT_EQ(sharded.cycle(), serial.cycle());
  EXPECT_EQ(sharded.in_flight_flits(), serial.in_flight_flits());

  serial.step_cycles(2000);
  sharded.step_cycles(2000);
  snapshot::Writer end_serial, end_sharded;
  serial.save(end_serial);
  sharded.save(end_sharded);
  EXPECT_EQ(end_sharded.bytes(), end_serial.bytes());
}

TEST(ShardedEngine, AutoShardCountPolicy) {
  EXPECT_EQ(Network::auto_shard_count(3), 3);  // explicit wins
  const std::size_t workers = ThreadPool::shared().thread_count();
  const int resolved = Network::auto_shard_count(0);
  if (workers < 2) {
    EXPECT_EQ(resolved, 1);
  } else {
    EXPECT_GE(resolved, 2);
    EXPECT_LE(resolved, 8);
  }
  // Requests beyond the mesh clamp to one shard per router.
  const MeshGeometry mesh(2, 2);
  Network net(mesh, tight_cfg(), make_routing("XY"));
  net.set_shards(64);
  EXPECT_EQ(net.shards(), 4);
}

TEST(ShardedEngine, NestedUseInsideThreadPoolCannotDeadlock) {
  // Fleet mode runs whole chips on pool workers, so a sharded window may
  // start while every worker is busy — the leader must then complete its
  // cycles alone. Saturate the pool with sharded windows and require all
  // of them to finish with serial-identical results.
  const MeshGeometry mesh(kWidth, kHeight);
  const std::vector<std::uint8_t> reference = run_and_save("XY", 1);
  ThreadPool& pool = ThreadPool::shared();
  const std::size_t chips = pool.thread_count() + 2;
  std::vector<std::vector<std::uint8_t>> results(chips);
  pool.parallel_for(chips, [&](std::size_t i) {
    results[i] = run_and_save("XY", 4);
  });
  for (std::size_t i = 0; i < chips; ++i) {
    EXPECT_EQ(results[i], reference) << "chip " << i;
  }
}

}  // namespace
}  // namespace parm::noc
