// Unit tests for parm_noc: routing algorithms (turn-model correctness),
// the cycle-level wormhole network (delivery, latency, flow control,
// wormhole ordering), traffic generation and windowed simulation.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "noc/traffic.hpp"
#include "noc/window_sim.hpp"
#include "snapshot/serializer.hpp"

namespace parm::noc {
namespace {

MeshGeometry mesh10x6() { return MeshGeometry(10, 6); }

NocConfig small_cfg() {
  NocConfig cfg;
  cfg.buffer_depth = 4;
  cfg.flits_per_packet = 4;
  return cfg;
}

// ---------------------------------------------------------------- routing

TEST(WestFirst, WestIsExclusiveWhenDstIsWest) {
  const MeshGeometry mesh = mesh10x6();
  const TileId cur = mesh.tile_id({5, 3});
  for (const TileCoord d : {TileCoord{2, 3}, TileCoord{2, 0},
                            TileCoord{0, 5}}) {
    const auto dirs = west_first_directions(mesh, cur, mesh.tile_id(d));
    ASSERT_EQ(dirs.size(), 1u);
    EXPECT_EQ(dirs[0], Direction::West);
  }
}

TEST(WestFirst, AdaptiveWhenNoWestComponent) {
  const MeshGeometry mesh = mesh10x6();
  const TileId cur = mesh.tile_id({2, 2});
  const auto dirs =
      west_first_directions(mesh, cur, mesh.tile_id({5, 4}));
  ASSERT_EQ(dirs.size(), 2u);  // east + north both productive
  EXPECT_NE(std::find(dirs.begin(), dirs.end(), Direction::East),
            dirs.end());
  EXPECT_NE(std::find(dirs.begin(), dirs.end(), Direction::North),
            dirs.end());
}

TEST(WestFirst, AlwaysProductive) {
  const MeshGeometry mesh = mesh10x6();
  for (TileId a = 0; a < mesh.tile_count(); ++a) {
    for (TileId b = 0; b < mesh.tile_count(); ++b) {
      if (a == b) continue;
      for (Direction d : west_first_directions(mesh, a, b)) {
        const TileId n = mesh.neighbor(a, d);
        ASSERT_NE(n, kInvalidTile);
        EXPECT_LT(mesh.hop_distance(n, b), mesh.hop_distance(a, b));
      }
    }
  }
}

TEST(XyRouting, FollowsDimensionOrder) {
  const MeshGeometry mesh = mesh10x6();
  XyRouting xy;
  RoutingState state;
  // East first when x differs, regardless of y.
  EXPECT_EQ(xy.route(mesh, mesh.tile_id({1, 1}), mesh.tile_id({4, 5}),
                     state),
            Direction::East);
  EXPECT_EQ(xy.route(mesh, mesh.tile_id({4, 1}), mesh.tile_id({1, 5}),
                     state),
            Direction::West);
  // Same column: go vertically.
  EXPECT_EQ(xy.route(mesh, mesh.tile_id({4, 1}), mesh.tile_id({4, 5}),
                     state),
            Direction::North);
}

TEST(IconRouting, PicksLeastLoadedPermittedHop) {
  const MeshGeometry mesh = mesh10x6();
  IconRouting icon;
  std::vector<double> rates(static_cast<std::size_t>(mesh.tile_count()),
                            0.0);
  const TileId cur = mesh.tile_id({2, 2});
  const TileId east = mesh.neighbor(cur, Direction::East);
  const TileId north = mesh.neighbor(cur, Direction::North);
  rates[static_cast<std::size_t>(east)] = 2.0;
  rates[static_cast<std::size_t>(north)] = 0.1;
  RoutingState state;
  state.router_incoming_rate = &rates;
  EXPECT_EQ(icon.route(mesh, cur, mesh.tile_id({5, 4}), state),
            Direction::North);
  rates[static_cast<std::size_t>(north)] = 3.0;
  EXPECT_EQ(icon.route(mesh, cur, mesh.tile_id({5, 4}), state),
            Direction::East);
}

TEST(PanrRouting, PsnSafetyFilterThenLeastLoaded) {
  const MeshGeometry mesh = mesh10x6();
  PanrRouting panr(0.5, 4.0);
  std::vector<double> psn(static_cast<std::size_t>(mesh.tile_count()), 0.0);
  std::vector<double> rates(static_cast<std::size_t>(mesh.tile_count()),
                            0.0);
  const TileId cur = mesh.tile_id({2, 2});
  const TileId east = mesh.neighbor(cur, Direction::East);
  const TileId north = mesh.neighbor(cur, Direction::North);
  // East is noisy (above the safety margin) → go north even though east
  // is less loaded.
  psn[static_cast<std::size_t>(east)] = 6.0;
  rates[static_cast<std::size_t>(east)] = 0.0;
  rates[static_cast<std::size_t>(north)] = 1.0;
  RoutingState state;
  state.tile_psn_percent = &psn;
  state.router_incoming_rate = &rates;
  state.input_buffer_occupancy = 0.1;
  EXPECT_EQ(panr.route(mesh, cur, mesh.tile_id({5, 4}), state),
            Direction::North);
}

TEST(PanrRouting, AllNoisyFallsBackToLeastNoisy) {
  const MeshGeometry mesh = mesh10x6();
  PanrRouting panr(0.5, 4.0);
  std::vector<double> psn(static_cast<std::size_t>(mesh.tile_count()), 9.0);
  const TileId cur = mesh.tile_id({2, 2});
  psn[static_cast<std::size_t>(mesh.neighbor(cur, Direction::North))] = 7.0;
  RoutingState state;
  state.tile_psn_percent = &psn;
  state.input_buffer_occupancy = 0.1;
  EXPECT_EQ(panr.route(mesh, cur, mesh.tile_id({5, 4}), state),
            Direction::North);
}

TEST(PanrRouting, CongestionModeIgnoresPsn) {
  const MeshGeometry mesh = mesh10x6();
  PanrRouting panr(0.5, 4.0);
  std::vector<double> psn(static_cast<std::size_t>(mesh.tile_count()), 0.0);
  std::vector<double> rates(static_cast<std::size_t>(mesh.tile_count()),
                            0.0);
  const TileId cur = mesh.tile_id({2, 2});
  const TileId east = mesh.neighbor(cur, Direction::East);
  const TileId north = mesh.neighbor(cur, Direction::North);
  psn[static_cast<std::size_t>(north)] = 0.0;
  psn[static_cast<std::size_t>(east)] = 3.0;
  rates[static_cast<std::size_t>(north)] = 2.0;
  rates[static_cast<std::size_t>(east)] = 0.2;
  RoutingState state;
  state.tile_psn_percent = &psn;
  state.router_incoming_rate = &rates;
  state.input_buffer_occupancy = 0.9;  // above B → congestion mode
  EXPECT_EQ(panr.route(mesh, cur, mesh.tile_id({5, 4}), state),
            Direction::East);
}

TEST(RoutingFactory, KnownNamesAndErrors) {
  EXPECT_EQ(make_routing("XY")->name(), "XY");
  EXPECT_EQ(make_routing("WestFirst")->name(), "WestFirst");
  EXPECT_EQ(make_routing("ICON")->name(), "ICON");
  EXPECT_EQ(make_routing("PANR")->name(), "PANR");
  EXPECT_THROW(make_routing("banana"), CheckError);
}

// ---------------------------------------------------------------- network

TEST(Network, SinglePacketDeliveryAndLatency) {
  const MeshGeometry mesh = mesh10x6();
  Network net(mesh, small_cfg(), std::make_unique<XyRouting>());
  const TileId src = mesh.tile_id({1, 1});
  const TileId dst = mesh.tile_id({6, 4});
  net.inject_packet(src, dst, 7);
  for (int i = 0; i < 100; ++i) net.step();
  EXPECT_EQ(net.total_delivered_flits(), 4u);
  EXPECT_EQ(net.in_flight_flits(), 0u);
  const auto& st = net.app_stats().at(7);
  EXPECT_EQ(st.packets_delivered, 1u);
  // 8 hops + 3 trailing flits + pipeline overheads; latency must be at
  // least hops+flits-1 and not absurdly larger under zero load.
  EXPECT_GE(st.avg_packet_latency(), 11.0);
  EXPECT_LE(st.avg_packet_latency(), 30.0);
}

TEST(Network, AllPairsDeliveredUnderEveryRouting) {
  const MeshGeometry mesh(6, 4);
  for (const char* algo : {"XY", "WestFirst", "ICON", "PANR"}) {
    Network net(mesh, small_cfg(), make_routing(algo));
    std::uint64_t expected = 0;
    for (TileId s = 0; s < mesh.tile_count(); ++s) {
      for (TileId d = 0; d < mesh.tile_count(); ++d) {
        if (s == d) continue;
        net.inject_packet(s, d, 0);
        expected += 4;
      }
    }
    for (int i = 0; i < 5000 && net.in_flight_flits() > 0; ++i) net.step();
    EXPECT_EQ(net.total_delivered_flits(), expected) << algo;
    EXPECT_EQ(net.in_flight_flits(), 0u) << algo;
  }
}

TEST(Network, WormholeKeepsPacketsContiguous) {
  // Two packets from the same source to the same destination must arrive
  // as two complete packets (tail counts equal packet count).
  const MeshGeometry mesh(4, 4);
  Network net(mesh, small_cfg(), std::make_unique<XyRouting>());
  net.inject_packet(0, 15, 1);
  net.inject_packet(0, 15, 1);
  for (int i = 0; i < 200; ++i) net.step();
  const auto& st = net.app_stats().at(1);
  EXPECT_EQ(st.packets_delivered, 2u);
  EXPECT_EQ(st.flits_delivered, 8u);
}

TEST(Network, BackpressureNeverOverflowsBuffers) {
  const MeshGeometry mesh(6, 4);
  NocConfig cfg = small_cfg();
  cfg.buffer_depth = 2;
  Network net(mesh, cfg, std::make_unique<XyRouting>());
  Rng rng(77);
  // Hammer a single column to force heavy contention.
  for (int round = 0; round < 50; ++round) {
    for (TileId s = 0; s < mesh.tile_count(); ++s) {
      if (s != 21) net.inject_packet(s, 21, 0);
    }
    for (int i = 0; i < 5; ++i) net.step();
    // Non-local buffers must respect their capacity.
    for (TileId t = 0; t < mesh.tile_count(); ++t) {
      for (Direction d : kCardinalDirections) {
        EXPECT_LE(net.buffer_size(t, d),
                  static_cast<std::uint32_t>(cfg.buffer_depth));
      }
    }
  }
  for (int i = 0; i < 20000 && net.in_flight_flits() > 0; ++i) net.step();
  EXPECT_EQ(net.in_flight_flits(), 0u);  // drains without deadlock
}

TEST(Network, FlitConservation) {
  const MeshGeometry mesh(6, 4);
  Network net(mesh, small_cfg(), make_routing("PANR"));
  Rng rng(5);
  std::uint64_t injected = 0;
  for (int i = 0; i < 300; ++i) {
    const TileId s = static_cast<TileId>(rng.next_below(24));
    TileId d = s;
    while (d == s) d = static_cast<TileId>(rng.next_below(24));
    net.inject_packet(s, d, static_cast<std::int32_t>(i % 5));
    injected += 4;
    net.step();
  }
  for (int i = 0; i < 20000 && net.in_flight_flits() > 0; ++i) net.step();
  EXPECT_EQ(net.total_injected_flits(), injected);
  EXPECT_EQ(net.total_delivered_flits(), injected);
}

TEST(Network, IncomingRateTracksLoad) {
  const MeshGeometry mesh(6, 4);
  Network net(mesh, small_cfg(), std::make_unique<XyRouting>());
  // Steady stream through the middle of row 1.
  for (int i = 0; i < 400; ++i) {
    net.inject_packet(mesh.tile_id({0, 1}), mesh.tile_id({5, 1}), 0);
    net.step();
  }
  const double mid_rate =
      net.incoming_rates()[static_cast<std::size_t>(mesh.tile_id({3, 1}))];
  const double far_rate =
      net.incoming_rates()[static_cast<std::size_t>(mesh.tile_id({3, 3}))];
  EXPECT_GT(mid_rate, 0.5);
  EXPECT_NEAR(far_rate, 0.0, 1e-6);
}

TEST(Network, InvalidInjectionThrows) {
  const MeshGeometry mesh(4, 4);
  Network net(mesh, small_cfg(), std::make_unique<XyRouting>());
  EXPECT_THROW(net.inject_packet(0, 0, 0), CheckError);
  EXPECT_THROW(net.inject_packet(-1, 3, 0), CheckError);
  EXPECT_THROW(net.inject_packet(0, 99, 0), CheckError);
}

TEST(Network, ResetStatsClearsCountersOnly) {
  const MeshGeometry mesh(4, 4);
  Network net(mesh, small_cfg(), std::make_unique<XyRouting>());
  net.inject_packet(0, 15, 0);
  for (int i = 0; i < 3; ++i) net.step();  // packet still in flight
  const std::uint64_t in_flight = net.in_flight_flits();
  EXPECT_GT(in_flight, 0u);
  net.reset_stats();
  EXPECT_EQ(net.total_injected_flits(), 0u);
  EXPECT_EQ(net.in_flight_flits(), in_flight);  // buffers untouched
  for (int i = 0; i < 100; ++i) net.step();
  EXPECT_EQ(net.in_flight_flits(), 0u);
}

// ---------------------------------------------------------------- traffic

TEST(Traffic, RateAccuracy) {
  const MeshGeometry mesh(6, 4);
  Network net(mesh, small_cfg(), std::make_unique<XyRouting>());
  TrafficGenerator gen({{0, 5, 0.25, 0}});  // 0.25 flits/cycle
  for (int i = 0; i < 1600; ++i) {
    gen.tick(net);
    net.step();
  }
  // 1600 cycles × 0.25 = 400 flits injected (integral packets of 4).
  EXPECT_NEAR(static_cast<double>(net.total_injected_flits()), 400.0, 4.0);
}

TEST(Traffic, PatternsHaveExpectedShape) {
  const MeshGeometry mesh = mesh10x6();
  Rng rng(3);
  const auto uni = uniform_random_flows(mesh, 0.1, rng);
  EXPECT_EQ(uni.size(), 60u);
  for (const auto& f : uni) EXPECT_NE(f.src, f.dst);
  const auto hot = hotspot_flows(mesh, 30, 0.1);
  EXPECT_EQ(hot.size(), 59u);
  for (const auto& f : hot) EXPECT_EQ(f.dst, 30);
  const auto tr = transpose_flows(mesh, 0.1);
  for (const auto& f : tr) EXPECT_NE(f.src, f.dst);
}

TEST(Traffic, OfferedLoad) {
  TrafficGenerator gen({{0, 1, 0.25, 0}, {1, 2, 0.5, 0}});
  EXPECT_DOUBLE_EQ(gen.offered_load(), 0.75);
}

// ---------------------------------------------------------------- tracing

TEST(Tracing, XyRouteMatchesDimensionOrderPath) {
  const MeshGeometry mesh(6, 4);
  Network net(mesh, small_cfg(), std::make_unique<XyRouting>());
  net.enable_tracing(true);
  const TileId src = mesh.tile_id({1, 1});
  const TileId dst = mesh.tile_id({4, 3});
  net.inject_packet(src, dst, 0);  // packet id 0
  for (int i = 0; i < 100; ++i) net.step();
  const auto route = net.traced_route(0);
  // XY: east along row 1, then north along column 4.
  const std::vector<TileId> expect{
      mesh.tile_id({1, 1}), mesh.tile_id({2, 1}), mesh.tile_id({3, 1}),
      mesh.tile_id({4, 1}), mesh.tile_id({4, 2}), mesh.tile_id({4, 3})};
  EXPECT_EQ(route, expect);
}

TEST(Tracing, TracedPathsAreMinimalForAdaptiveRouting) {
  const MeshGeometry mesh(6, 4);
  Network net(mesh, small_cfg(), make_routing("PANR"));
  net.enable_tracing(true);
  Rng rng(3);
  std::vector<double> psn(static_cast<std::size_t>(mesh.tile_count()));
  for (auto& x : psn) x = rng.uniform(0.0, 6.0);
  net.set_tile_psn(psn);
  std::vector<std::pair<std::int64_t, std::pair<TileId, TileId>>> pkts;
  std::int64_t pid = 0;
  for (int i = 0; i < 40; ++i) {
    const TileId s = static_cast<TileId>(rng.next_below(24));
    TileId d = s;
    while (d == s) d = static_cast<TileId>(rng.next_below(24));
    net.inject_packet(s, d, 0);
    pkts.push_back({pid++, {s, d}});
  }
  for (int i = 0; i < 3000 && net.in_flight_flits() > 0; ++i) net.step();
  for (const auto& [id, sd] : pkts) {
    const auto route = net.traced_route(id);
    ASSERT_FALSE(route.empty());
    EXPECT_EQ(route.front(), sd.first);
    EXPECT_EQ(route.back(), sd.second);
    // Minimal: hop count equals the Manhattan distance.
    EXPECT_EQ(static_cast<int>(route.size()) - 1,
              mesh.hop_distance(sd.first, sd.second));
  }
}

TEST(Tracing, DisabledByDefault) {
  const MeshGeometry mesh(4, 4);
  Network net(mesh, small_cfg(), std::make_unique<XyRouting>());
  net.inject_packet(0, 5, 0);
  for (int i = 0; i < 50; ++i) net.step();
  EXPECT_TRUE(net.traced_route(0).empty());
}

TEST(Tracing, RetainedTracesAreBounded) {
  const MeshGeometry mesh(4, 4);
  Network net(mesh, small_cfg(), std::make_unique<XyRouting>());
  net.enable_tracing(true);
  net.set_trace_capacity(8);
  for (int i = 0; i < 40; ++i) {
    net.inject_packet(0, 15, 0);  // packet ids 0..39
    for (int c = 0; c < 40; ++c) net.step();
  }
  // Oldest traces are evicted; the newest survive with full routes.
  EXPECT_EQ(net.trace_evictions(), 32u);
  EXPECT_TRUE(net.traced_route(0).empty());
  EXPECT_TRUE(net.traced_route(31).empty());
  const auto newest = net.traced_route(39);
  ASSERT_FALSE(newest.empty());
  EXPECT_EQ(newest.front(), 0);
  EXPECT_EQ(newest.back(), 15);
  EXPECT_THROW(net.set_trace_capacity(0), CheckError);
}

TEST(Tracing, SnapshotSaveRejectedWhileTracing) {
  const MeshGeometry mesh(4, 4);
  Network net(mesh, small_cfg(), std::make_unique<XyRouting>());
  net.enable_tracing(true);
  net.inject_packet(0, 5, 0);
  snapshot::Writer w;
  EXPECT_THROW(net.save(w), CheckError);
  net.enable_tracing(false);
  snapshot::Writer ok;
  net.save(ok);  // tracing off: saving works again
  EXPECT_GT(ok.size(), 0u);
}

// ----------------------------------------------------- in-flight accounting

TEST(Network, InFlightCounterMatchesScan) {
  const MeshGeometry mesh(6, 4);
  Network net(mesh, small_cfg(), make_routing("PANR"));
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const TileId s = static_cast<TileId>(rng.next_below(24));
    TileId d = s;
    while (d == s) d = static_cast<TileId>(rng.next_below(24));
    net.inject_packet(s, d, 0);
    net.step();
    ASSERT_EQ(net.in_flight_flits(), net.in_flight_flits_scan());
  }
  for (int i = 0; i < 20000 && net.in_flight_flits() > 0; ++i) net.step();
  EXPECT_EQ(net.in_flight_flits(), 0u);
  EXPECT_EQ(net.in_flight_flits_scan(), 0u);
}

// --------------------------------------------------------------- window sim

TEST(WindowSim, ReportsActivityAndLatency) {
  const MeshGeometry mesh = mesh10x6();
  Network net(mesh, small_cfg(), std::make_unique<XyRouting>());
  TrafficGenerator gen({{0, 9, 0.5, 3}, {50, 59, 0.5, 4}});
  WindowConfig cfg{128, 512};
  const WindowResult w = run_window(net, gen, cfg);
  EXPECT_EQ(w.cycles, 512u);
  EXPECT_GT(w.injected_flits, 0u);
  EXPECT_GT(w.delivery_ratio, 0.9);
  EXPECT_TRUE(w.app_latency.contains(3));
  EXPECT_TRUE(w.app_latency.contains(4));
  // Row-0 middle routers forward the first flow's traffic.
  EXPECT_GT(w.router_activity[static_cast<std::size_t>(
                mesh.tile_id({5, 0}))],
            0.2);
  // An untouched router is quiet.
  EXPECT_NEAR(w.router_activity[static_cast<std::size_t>(
                  mesh.tile_id({5, 3}))],
              0.0, 1e-9);
}

TEST(WindowSim, CongestionRaisesLatency) {
  const MeshGeometry mesh = mesh10x6();
  Network light(mesh, small_cfg(), std::make_unique<XyRouting>());
  Network heavy(mesh, small_cfg(), std::make_unique<XyRouting>());
  TrafficGenerator light_gen(hotspot_flows(mesh, 33, 0.01));
  TrafficGenerator heavy_gen(hotspot_flows(mesh, 33, 0.2));
  WindowConfig cfg{256, 1024};
  const double l1 = run_window(light, light_gen, cfg).avg_latency;
  const double l2 = run_window(heavy, heavy_gen, cfg).avg_latency;
  EXPECT_GT(l2, l1 * 2.0);
}

}  // namespace
}  // namespace parm::noc
