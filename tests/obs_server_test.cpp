// Embedded HTTP observability server tests: transport behavior (raw
// POSIX-socket client, no HTTP library), endpoint content against a real
// simulator, and the observe-only contract — a run with the full
// self-observation stack enabled (profiler, SLO engine, recorder,
// time-series capture) and a live server under active scraping must be
// bit-identical to a bare run, straight and across snapshot/resume.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "exp/experiments.hpp"
#include "obs/blackbox.hpp"
#include "obs/events.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/server.hpp"
#include "obs/slo.hpp"
#include "sim/config_json.hpp"
#include "sim/system_sim.hpp"
#include "sim_result_compare.hpp"

namespace parm::obs {
namespace {

struct HttpResult {
  int status = 0;
  std::string body;
};

/// Minimal blocking HTTP GET against 127.0.0.1:`port` — raw sockets, so
/// the tests exercise the server's real wire behavior.
HttpResult http_get(std::uint16_t port, const std::string& target) {
  HttpResult out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return out;
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.1 200 OK\r\n...headers...\r\n\r\nbody"
  if (raw.compare(0, 9, "HTTP/1.1 ") == 0 && raw.size() > 12) {
    out.status = std::atoi(raw.c_str() + 9);
  }
  const std::size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) out.body = raw.substr(split + 4);
  return out;
}

appmodel::SequenceConfig small_sequence(std::uint64_t seed) {
  appmodel::SequenceConfig cfg;
  cfg.kind = appmodel::SequenceKind::Mixed;
  cfg.app_count = 4;
  cfg.inter_arrival_s = 0.05;
  cfg.seed = seed;
  return cfg;
}

sim::SimConfig engine_cfg() {
  sim::SimConfig cfg = exp::default_sim_config();
  cfg.framework.mapping = "PARM";
  cfg.framework.routing = "PANR";
  cfg.record_telemetry = true;
  return cfg;
}

/// engine_cfg() with the whole self-observation stack on — what --serve
/// implies in the runners.
sim::SimConfig observed_cfg() {
  sim::SimConfig cfg = engine_cfg();
  cfg.profile_phases = true;
  cfg.track_slo = true;
  cfg.record_events = true;
  cfg.record_timeseries = true;
  return cfg;
}

/// The runners' endpoint wiring (examples/serve_util.hpp), rebuilt here
/// because tests do not include example sources: same hooks, same
/// locking discipline.
EndpointHooks hooks_for(sim::SystemSimulator& sim, const sim::SimConfig& cfg) {
  EndpointHooks hooks;
  hooks.metrics = [&sim](std::ostream& os) {
    sim.metrics().write_prometheus(os);
  };
  hooks.health = [&sim]() {
    std::lock_guard<std::mutex> lock(sim.obs_mutex());
    return HealthMonitor().evaluate(sim.metrics(), sim.slo().report());
  };
  hooks.slo = [&sim]() {
    std::lock_guard<std::mutex> lock(sim.obs_mutex());
    return sim.slo().report();
  };
  hooks.events = [&sim](std::ostream& os, std::size_t limit) {
    const std::vector<Event> events = sim.recorder().collect();
    const std::size_t first =
        (limit == 0 || limit >= events.size()) ? 0 : events.size() - limit;
    for (std::size_t i = first; i < events.size(); ++i) {
      write_event_json(os, events[i]);
      os << '\n';
    }
  };
  hooks.series = [&sim](std::ostream& os, const std::string& name,
                        int level) {
    std::lock_guard<std::mutex> lock(sim.obs_mutex());
    if (name.empty()) {
      os << "{\"series\":[";
      const auto names = sim.timeseries().series_names();
      for (std::size_t i = 0; i < names.size(); ++i) {
        os << (i != 0 ? "," : "") << '"' << names[i] << '"';
      }
      os << "]}";
      return;
    }
    sim.timeseries().dump_jsonl(os);
    (void)level;
  };
  hooks.varz = [&cfg](std::ostream& os) { sim::write_config_json(os, cfg); };
  hooks.profile = [&sim](std::ostream& os) {
    write_profile_json(os, sim.metrics(), ThreadPool::shared().stats());
  };
  return hooks;
}

/// Extracts the integer following `marker` in `json` (crude but enough
/// for the fixed formats under test). -1 when the marker is absent.
long long int_after(const std::string& json, const std::string& marker) {
  const std::size_t pos = json.find(marker);
  if (pos == std::string::npos) return -1;
  return std::stoll(json.substr(pos + marker.size()));
}

TEST(HttpServer, ServesRegisteredPathsAndRejectsTheRest) {
  HttpServer server;
  server.handle("/hello", [](const HttpRequest&) {
    HttpResponse res;
    res.body = "world";
    return res;
  });
  server.handle("/echo", [](const HttpRequest& req) {
    HttpResponse res;
    res.body = req.param("q", "<missing>");
    return res;
  });
  server.handle("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("kaboom");
  });
  const std::uint16_t port = server.start(0);  // ephemeral
  ASSERT_GT(port, 0);
  EXPECT_TRUE(server.running());

  HttpResult r = http_get(port, "/hello");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "world");

  // Query parameters are percent-decoded; missing ones hit the fallback.
  r = http_get(port, "/echo?q=hello%20world&x=1");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "hello world");
  r = http_get(port, "/echo");
  EXPECT_EQ(r.body, "<missing>");

  r = http_get(port, "/nope");
  EXPECT_EQ(r.status, 404);

  // A throwing handler becomes a 500, never a dead server.
  r = http_get(port, "/boom");
  EXPECT_EQ(r.status, 500);
  EXPECT_NE(r.body.find("kaboom"), std::string::npos);
  EXPECT_EQ(http_get(port, "/hello").status, 200);

  EXPECT_GE(server.requests_served(), 5u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(HttpServer, HealthzMapsCritTo503) {
  HttpServer server;
  EndpointHooks hooks;
  std::atomic<bool> crit{false};
  hooks.health = [&crit]() {
    HealthReport report;
    if (crit.load()) {
      report.status = HealthStatus::kCrit;
      report.checks.push_back(
          {"synthetic", HealthStatus::kCrit, 1.0, "forced"});
    }
    return report;
  };
  register_endpoints(server, std::move(hooks));
  const std::uint16_t port = server.start(0);
  EXPECT_EQ(http_get(port, "/healthz").status, 200);
  crit.store(true);
  EXPECT_EQ(http_get(port, "/healthz").status, 503);
  // The index page lists the wired endpoint.
  const HttpResult index = http_get(port, "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/healthz"), std::string::npos);
}

TEST(ObsEndpoints, ServeACompletedSimulation) {
  const auto seq = appmodel::make_sequence(small_sequence(42));
  const sim::SimConfig cfg = observed_cfg();
  sim::SystemSimulator sim(cfg, seq);
  (void)sim.run();

  HttpServer server;
  register_endpoints(server, hooks_for(sim, cfg));
  const std::uint16_t port = server.start(0);

  // /metrics: Prometheus exposition with the build-identity gauge.
  HttpResult r = http_get(port, "/metrics");
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("parm_build_info{"), std::string::npos);
  EXPECT_NE(r.body.find("parm_sim_epochs_total"), std::string::npos);

  // /slo: all four objectives.
  r = http_get(port, "/slo");
  ASSERT_EQ(r.status, 200);
  for (const char* name : {"ve_rate", "deadline_miss_rate",
                           "delivery_ratio", "time_to_admit_p99"}) {
    EXPECT_NE(r.body.find(name), std::string::npos) << name;
  }

  // /varz: resolved config + build identity.
  r = http_get(port, "/varz");
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"build\""), std::string::npos);
  EXPECT_NE(r.body.find("\"version\""), std::string::npos);

  // /profilez: all six phases, each with nonzero samples (the acceptance
  // bar for the self-profiler wiring).
  r = http_get(port, "/profilez");
  ASSERT_EQ(r.status, 200);
  EXPECT_GT(int_after(r.body, "\"epochs\":"), 0);
  for (const char* phase : {"admission", "noc", "psn", "emergency",
                            "migration", "telemetry"}) {
    const std::string marker =
        std::string("\"phase\":\"") + phase + "\",\"count\":";
    EXPECT_GT(int_after(r.body, marker), 0) << phase;
  }

  // /eventz round-trips through the blackbox loader: every served line
  // parses, and the loaded events are exactly the recorder's.
  r = http_get(port, "/eventz");
  ASSERT_EQ(r.status, 200);
  std::istringstream served(r.body);
  BlackboxLoadStats stats;
  std::vector<Event> loaded = load_events_jsonl(served, &stats);
  EXPECT_EQ(stats.skipped, 0u);
  const std::vector<Event> recorded = sim.recorder().collect();
  ASSERT_GT(recorded.size(), 0u);
  ASSERT_EQ(loaded.size(), recorded.size());
  std::sort(loaded.begin(), loaded.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  for (std::size_t i = 0; i < recorded.size(); ++i) {
    EXPECT_EQ(loaded[i].seq, recorded[i].seq);
    EXPECT_EQ(loaded[i].type, recorded[i].type);
    EXPECT_EQ(loaded[i].app, recorded[i].app);
    EXPECT_EQ(loaded[i].chip, recorded[i].chip);
    EXPECT_NEAR(loaded[i].t, recorded[i].t, 1e-9);
  }

  // ?limit= keeps the newest N.
  r = http_get(port, "/eventz?limit=3");
  ASSERT_EQ(r.status, 200);
  std::size_t lines = 0;
  for (char c : r.body) lines += c == '\n';
  EXPECT_EQ(lines, std::min<std::size_t>(3, recorded.size()));
  r = http_get(port, "/eventz?limit=bogus");
  EXPECT_EQ(r.status, 400);

  // /seriesz: the listing names the captured waveforms.
  r = http_get(port, "/seriesz");
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"series\""), std::string::npos);
  EXPECT_NE(r.body.find("psn.chip.peak_percent"), std::string::npos);
}

/// Runs `cfg` with a live server and a scraper thread hammering every
/// endpoint for the whole run.
sim::SimResult run_under_scrape(const sim::SimConfig& cfg,
                                const std::vector<appmodel::AppArrival>& seq) {
  sim::SystemSimulator sim(cfg, seq);
  HttpServer server;
  register_endpoints(server, hooks_for(sim, cfg));
  const std::uint16_t port = server.start(0);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    const char* paths[] = {"/metrics", "/healthz",  "/slo",    "/eventz",
                           "/seriesz", "/profilez", "/varz"};
    std::size_t i = 0;
    while (!done.load(std::memory_order_relaxed)) {
      if (http_get(port, paths[i % 7]).status != 0) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
      ++i;
    }
  });
  const sim::SimResult result = sim.run();
  done.store(true);
  scraper.join();
  server.stop();
  EXPECT_GT(scrapes.load(), 0u);  // the run really was scraped mid-flight
  return result;
}

TEST(ObserveOnly, ServingUnderActiveScrapingIsBitIdentical) {
  // The tentpole contract: --serve (profiler + SLO + recorder +
  // time-series + HTTP server, scraped concurrently) must not perturb
  // the simulation by a single bit.
  const auto seq = appmodel::make_sequence(small_sequence(42));
  sim::SystemSimulator bare(engine_cfg(), seq);
  const sim::SimResult r_bare = bare.run();
  const sim::SimResult r_served = run_under_scrape(observed_cfg(), seq);
  sim::expect_identical(r_bare, r_served);
}

TEST(ObserveOnly, SnapshotResumeUnderScrapingIsBitIdentical) {
  // Same contract across the snapshot boundary: a snapshot taken by a
  // bare run must resume — with the full observation stack on and a
  // scraper attached — into the same bits as the uninterrupted bare run.
  const auto seq = appmodel::make_sequence(small_sequence(42));
  sim::SystemSimulator straight(engine_cfg(), seq);
  const sim::SimResult r_straight = straight.run();

  const auto dir =
      std::filesystem::temp_directory_path() / "parm_obs_server_test";
  std::filesystem::create_directories(dir);
  sim::SystemSimulator first(engine_cfg(), seq);
  first.enable_periodic_snapshots(40, dir.string());
  (void)first.run();
  const auto snap = dir / "epoch_40.parmsnap";
  ASSERT_TRUE(std::filesystem::exists(snap));

  const sim::SimConfig cfg = observed_cfg();
  sim::SystemSimulator resumed(cfg, seq);
  resumed.restore_snapshot(snap.string());
  EXPECT_EQ(resumed.epoch(), 40u);

  HttpServer server;
  register_endpoints(server, hooks_for(resumed, cfg));
  const std::uint16_t port = server.start(0);
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      http_get(port, "/metrics");
      http_get(port, "/slo");
      http_get(port, "/profilez");
    }
  });
  const sim::SimResult r_resumed = resumed.run();
  done.store(true);
  scraper.join();
  server.stop();

  sim::expect_identical(r_straight, r_resumed);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace parm::obs
