// Tests for the observability layer: histogram percentile math, registry
// lookup semantics, scoped timers, and Chrome-trace / JSONL output shape.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

namespace parm::obs {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON validator (recursive descent, no value extraction). Good
// enough to prove the exporters emit structurally valid JSON.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---------------------------------------------------------------------
// Histogram

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), CheckError);
  EXPECT_THROW(Histogram({2.0, 1.0}), CheckError);
  EXPECT_THROW(Histogram({1.0, 1.0}), CheckError);
}

TEST(Histogram, CountSumMinMax) {
  Histogram h({10.0, 20.0});
  h.observe(5.0);
  h.observe(15.0);
  h.observe(25.0);  // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 45.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 25.0);
  EXPECT_DOUBLE_EQ(h.mean(), 15.0);
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
}

TEST(Histogram, PercentileExactOnUniformAlignedInput) {
  // 1..100 with bucket bounds at 25/50/75/100: each bucket holds exactly
  // 25 observations spread uniformly, so the interpolated percentile
  // equals the percentile rank itself.
  Histogram h({25.0, 50.0, 75.0, 100.0});
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(90.0), 90.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 99.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
}

TEST(Histogram, PercentileExactWithClampedEdges) {
  // Bucket edges clamp to the observed range: 5 obs at 2 (bucket [.,10])
  // and 5 at 15 (bucket (10,20]) with min 2, max 15.
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 5; ++i) h.observe(2.0);
  for (int i = 0; i < 5; ++i) h.observe(15.0);
  // p25 → rank 2.5 of 5 in [2,10]: 2 + 0.5·8 = 6.
  EXPECT_DOUBLE_EQ(h.percentile(25.0), 6.0);
  // p50 → rank 5 of 5 in [2,10]: upper edge.
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 10.0);
  // p100 → observed maximum, not the bucket bound 20.
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 15.0);
}

TEST(Histogram, SingleValuePercentilesCollapse) {
  Histogram h({1.0, 10.0, 100.0});
  for (int i = 0; i < 7; ++i) h.observe(42.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 42.0);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, ExponentialBounds) {
  const auto b = Histogram::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
}

// ---------------------------------------------------------------------
// Registry

TEST(Registry, CounterLookupAndIncrement) {
  Counter& c = Registry::instance().counter("test.obs.counter");
  c.reset();
  c.inc();
  c.inc(41);
  // A second lookup resolves to the same slot.
  EXPECT_EQ(Registry::instance().counter("test.obs.counter").value(), 42u);
  EXPECT_EQ(&Registry::instance().counter("test.obs.counter"), &c);
  EXPECT_EQ(Registry::instance().counter_value("test.obs.counter"), 42u);
  EXPECT_EQ(Registry::instance().counter_value("test.obs.absent"), 0u);
}

TEST(Registry, GaugeLookupAndSet) {
  Gauge& g = Registry::instance().gauge("test.obs.gauge");
  g.set(1.5);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(Registry::instance().gauge("test.obs.gauge").value(),
                   4.0);
}

TEST(Registry, HistogramBoundsFixedAtFirstRegistration) {
  Histogram& h =
      Registry::instance().histogram("test.obs.hist", {1.0, 2.0});
  // Later registrations ignore their bounds argument.
  Histogram& again =
      Registry::instance().histogram("test.obs.hist", {9.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.upper_bounds().size(), 2u);
}

// Decodes the JSON string escapes json_escape produces, to round-trip a
// metric name through the export and back.
std::string json_unescape(std::string_view s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n':
        out.push_back('\n');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 'u':
        out.push_back(static_cast<char>(
            std::stoi(std::string(s.substr(i + 1, 4)), nullptr, 16)));
        i += 4;
        break;
      default:
        out.push_back(s[i]);  // \" \\ \/
    }
  }
  return out;
}

TEST(Registry, JsonExportRoundTripsHostileNamesAndSortsKeys) {
  // A metric name with every character JSON treats specially: quote,
  // backslash, newline, and a control byte. The export must stay valid
  // JSON and the escaped key must decode back to the original name.
  const std::string hostile = "we\"ird\\name\nwith\x01ctrl";
  Registry reg;
  reg.counter(hostile).inc(3);
  reg.counter("b.second").inc(2);
  reg.counter("a.first").inc(1);

  std::ostringstream json;
  reg.write_json(json);
  const std::string out = json.str();
  EXPECT_TRUE(JsonValidator(out).valid()) << out;

  // Extract the hostile key (the only one containing an escaped quote)
  // and round-trip it.
  const std::size_t start = out.find("we\\\"");
  ASSERT_NE(start, std::string::npos) << out;
  std::size_t end = start;
  while (out[end] != '"' || out[end - 1] == '\\') ++end;
  EXPECT_EQ(json_unescape(out.substr(start, end - start)), hostile);

  // Keys come out in deterministic sorted order, so exports diff cleanly
  // across runs.
  EXPECT_LT(out.find("\"a.first\":1"), out.find("\"b.second\":2"));
  const std::ostringstream again = [&] {
    std::ostringstream os;
    reg.write_json(os);
    return os;
  }();
  EXPECT_EQ(out, again.str());
}

TEST(Registry, TextAndJsonReports) {
  Registry::instance().counter("test.obs.report").inc(7);
  std::ostringstream text;
  Registry::instance().write_text(text);
  EXPECT_NE(text.str().find("test.obs.report = 7"), std::string::npos);

  std::ostringstream json;
  Registry::instance().write_json(json);
  EXPECT_TRUE(JsonValidator(json.str()).valid()) << json.str();
  EXPECT_NE(json.str().find("\"test.obs.report\":7"), std::string::npos);
}

// ---------------------------------------------------------------------
// Prometheus exposition

// Returns the numeric value of the exposition line starting with
// `prefix` followed by a space (npos-safe; asserts the line exists).
double prom_line_value(const std::string& text, const std::string& prefix) {
  const std::string needle = prefix + " ";
  std::size_t pos = 0;
  while (true) {
    pos = text.find(needle, pos);
    EXPECT_NE(pos, std::string::npos) << "missing " << prefix;
    if (pos == std::string::npos) return -1.0;
    if (pos == 0 || text[pos - 1] == '\n') break;
    pos += needle.size();
  }
  return std::stod(text.substr(pos + needle.size()));
}

TEST(Prometheus, InfBucketEqualsCountAndBucketsAreCumulative) {
  Registry reg;
  Histogram& h = reg.histogram("exp.hist", {1.0, 2.0, 4.0});
  // Observations in every bucket including the overflow beyond the last
  // bound — the case where a naive exposition (cumulative sum of the
  // internal per-bucket tallies only) under-reports +Inf.
  for (const double v : {0.5, 1.5, 3.0, 8.0, 9.0}) h.observe(v);

  std::ostringstream os;
  prometheus_text(reg, os);
  const std::string text = os.str();

  // The +Inf bucket must equal _count exactly: every observation,
  // including overflow, is <= +Inf by definition.
  const double inf_bucket =
      prom_line_value(text, "parm_exp_hist_bucket{le=\"+Inf\"}");
  const double count = prom_line_value(text, "parm_exp_hist_count");
  EXPECT_EQ(inf_bucket, count);
  EXPECT_EQ(count, 5.0);

  // Buckets are cumulative: non-decreasing in bound order, each <= +Inf.
  double prev = 0.0;
  for (const char* b : {"1\"}", "2\"}", "4\"}"}) {
    const double v =
        prom_line_value(text, std::string("parm_exp_hist_bucket{le=\"") + b);
    EXPECT_GE(v, prev) << text;
    EXPECT_LE(v, inf_bucket) << text;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(prom_line_value(text, "parm_exp_hist_sum"), 22.0);
}

TEST(Prometheus, CountersAreMonotoneAcrossScrapes) {
  // Two consecutive expositions of the same registry: every counter in
  // the second scrape must be >= its value in the first (the Prometheus
  // counter contract; a reset between scrapes would break rate()).
  Registry reg;
  reg.counter("exp.a").inc(3);
  reg.counter("exp.b");
  std::ostringstream first;
  prometheus_text(reg, first);

  reg.counter("exp.a").inc(2);
  reg.counter("exp.b").inc(1);
  std::ostringstream second;
  prometheus_text(reg, second);

  for (const char* name : {"parm_exp_a_total", "parm_exp_b_total"}) {
    EXPECT_GE(prom_line_value(second.str(), name),
              prom_line_value(first.str(), name))
        << name;
  }
}

// ---------------------------------------------------------------------
// Registry::merge_from histograms

TEST(Registry, MergeFromAlignsHistogramBuckets) {
  Registry fleet, chip;
  Histogram& a = fleet.histogram("m.h", {10.0, 20.0});
  a.observe(5.0);
  Histogram& b = chip.histogram("m.h", {10.0, 20.0});
  b.observe(15.0);
  b.observe(25.0);

  fleet.merge_from(chip);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 45.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 25.0);
  ASSERT_EQ(a.bucket_counts().size(), 3u);
  EXPECT_EQ(a.bucket_counts()[0], 1u);  // 5
  EXPECT_EQ(a.bucket_counts()[1], 1u);  // 15
  EXPECT_EQ(a.bucket_counts()[2], 1u);  // 25 (overflow)

  // A histogram the target never saw is registered with the donor's
  // bounds — merging two chips never loses a series.
  chip.histogram("m.only_chip", {1.0}).observe(0.5);
  fleet.merge_from(chip);
  EXPECT_EQ(fleet.histogram("m.only_chip", {}).count(), 1u);
}

TEST(Registry, MergeFromRejectsMismatchedBucketBounds) {
  Registry fleet, chip;
  fleet.histogram("m.h", {10.0, 20.0}).observe(1.0);
  chip.histogram("m.h", {5.0}).observe(1.0);
  EXPECT_THROW(fleet.merge_from(chip), CheckError);
}

TEST(Registry, MergeFromIsAdditiveNotIdempotent) {
  // merge_from folds — merging the same donor twice double-counts. The
  // fleet driver therefore merges each chip exactly once; this test is
  // the guard that documents (and pins) that contract.
  Registry fleet, chip;
  chip.counter("m.c").inc(5);
  chip.histogram("m.h", {10.0}).observe(3.0);

  fleet.merge_from(chip);
  fleet.merge_from(chip);
  EXPECT_EQ(fleet.counter_value("m.c"), 10u);
  EXPECT_EQ(fleet.histogram("m.h", {}).count(), 2u);

  // Self-merge is rejected outright rather than silently doubling.
  EXPECT_THROW(fleet.merge_from(fleet), CheckError);
}

// ---------------------------------------------------------------------
// ScopedTimer

TEST(ScopedTimer, FeedsHistogram) {
  Histogram h({1e6});
  {
    ScopedTimer t(h);
  }
  { ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.min(), 0.0);
}

TEST(ScopedTimer, RecordsEvenWhenScopeThrows) {
  // The destructor runs during unwinding and must both record the
  // elapsed time and never let a second exception escape.
  Histogram h({1e6});
  EXPECT_THROW(
      {
        ScopedTimer t(h);
        throw std::runtime_error("scope failed");
      },
      std::runtime_error);
  EXPECT_EQ(h.count(), 1u);
}

// ---------------------------------------------------------------------
// Tracer

TEST(Tracer, DisabledSinkIsInert) {
  Tracer& t = Tracer::instance();
  ASSERT_FALSE(t.enabled());
  // Must be no-ops, not crashes.
  t.instant("test", "nothing", {{"k", 1}});
  t.complete("test", "nothing", 0.0, 1.0);
  ScopedTrace s("test", "nothing");
}

TEST(Tracer, ChromeAndJsonlOutput) {
  const std::string chrome_path =
      ::testing::TempDir() + "obs_test_trace.json";
  const std::string jsonl_path =
      ::testing::TempDir() + "obs_test_trace.jsonl";
  Tracer& t = Tracer::instance();
  ASSERT_TRUE(t.open_chrome(chrome_path));
  ASSERT_TRUE(t.open_jsonl(jsonl_path));
  EXPECT_TRUE(t.enabled());

  t.instant("sim", "voltage_emergency",
            {{"tile", 3}, {"bench", "fft \"quoted\""}});
  {
    ScopedTrace s("pdn", "pdn.solve");
  }
  t.complete("noc", "noc.window", 10.0, 5.0, {{"flits", 123}});
  t.close();
  EXPECT_FALSE(t.enabled());

  const std::string chrome = read_file(chrome_path);
  EXPECT_TRUE(JsonValidator(chrome).valid()) << chrome;
  // Required trace-event fields and our event names.
  EXPECT_NE(chrome.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ts\":"), std::string::npos);
  EXPECT_NE(chrome.find("\"dur\":"), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"voltage_emergency\""),
            std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"pdn.solve\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"noc.window\""), std::string::npos);
  // String args are escaped.
  EXPECT_NE(chrome.find("fft \\\"quoted\\\""), std::string::npos);

  // Every JSONL line is standalone valid JSON.
  std::ifstream in(jsonl_path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(JsonValidator(line).valid()) << line;
    ++lines;
  }
  EXPECT_GE(lines, 3);

  std::remove(chrome_path.c_str());
  std::remove(jsonl_path.c_str());
}

}  // namespace
}  // namespace parm::obs
