// Tests for the PDN AC analysis and the SPICE netlist export.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/check.hpp"
#include "pdn/ac_analysis.hpp"
#include "pdn/pdn_netlist.hpp"
#include "pdn/spice_export.hpp"
#include "power/technology.hpp"

namespace parm::pdn {
namespace {

TEST(AcAnalysis, PureResistorIsFlat) {
  Circuit ckt;
  const NodeId n = ckt.add_node("n");
  ckt.add_resistor(n, kGround, 42.0);
  AcAnalysis ac(ckt);
  for (double f : {1e3, 1e6, 1e9}) {
    const auto z = ac.input_impedance(n, f);
    EXPECT_NEAR(z.real(), 42.0, 1e-9);
    EXPECT_NEAR(z.imag(), 0.0, 1e-9);
  }
}

TEST(AcAnalysis, CapacitorImpedanceMatchesFormula) {
  Circuit ckt;
  const NodeId n = ckt.add_node("n");
  const double C = 1e-9;
  ckt.add_capacitor(n, kGround, C);
  AcAnalysis ac(ckt);
  for (double f : {1e6, 1e7, 1e8}) {
    const auto z = ac.input_impedance(n, f);
    const double expect = 1.0 / (2.0 * std::numbers::pi * f * C);
    EXPECT_NEAR(std::abs(z), expect, expect * 1e-9);
    EXPECT_NEAR(z.real(), 0.0, 1e-9);
    EXPECT_LT(z.imag(), 0.0);  // capacitive
  }
}

TEST(AcAnalysis, InductorImpedanceMatchesFormula) {
  Circuit ckt;
  const NodeId n = ckt.add_node("n");
  const double L = 10e-12;
  // Inductor to ground, with a tiny series R to keep DC defined.
  const NodeId m = ckt.add_node("m");
  ckt.add_resistor(n, m, 1e-6);
  ckt.add_inductor(m, kGround, L);
  AcAnalysis ac(ckt);
  for (double f : {1e8, 1e9}) {
    const auto z = ac.input_impedance(n, f);
    const double expect = 2.0 * std::numbers::pi * f * L;
    EXPECT_NEAR(std::abs(z), expect, expect * 1e-3);
    EXPECT_GT(z.imag(), 0.0);  // inductive
  }
}

TEST(AcAnalysis, VoltageSourceIsAcShort) {
  // Probe behind a source: R to an ideal source → Z = R (source shorted).
  Circuit ckt;
  const NodeId s = ckt.add_node("s");
  const NodeId n = ckt.add_node("n");
  ckt.add_voltage_source(s, kGround, 0.8);
  ckt.add_resistor(s, n, 5.0);
  AcAnalysis ac(ckt);
  const auto z = ac.input_impedance(n, 1e6);
  EXPECT_NEAR(std::abs(z), 5.0, 1e-9);
}

TEST(AcAnalysis, DomainPdnShowsAntiResonance) {
  // The bump inductance and decap tank must produce an impedance peak at
  //   f0 ≈ 1 / (2π sqrt(Lb · C_total)),
  // with low impedance on both sides — the textbook PDN profile.
  const auto& tech = power::technology_node(7);
  std::array<TileLoad, 4> loads{};  // loads are AC-opened anyway
  const DomainCircuit dom = build_domain_circuit(tech, 0.4, loads);
  AcAnalysis ac(dom.circuit);
  const auto sweep = ac.sweep(dom.tile_nodes[0], 1e6, 5e9, 120);
  const ImpedancePoint peak = AcAnalysis::peak(sweep);

  const double c_total = 4.0 * tech.pdn_c_decap;
  const double f0 = 1.0 / (2.0 * std::numbers::pi *
                           std::sqrt(tech.pdn_l_bump * c_total));
  EXPECT_GT(peak.freq_hz, f0 * 0.4);
  EXPECT_LT(peak.freq_hz, f0 * 2.5);
  // Peak is a real resonance: visibly above both sweep endpoints.
  EXPECT_GT(peak.magnitude(), 1.5 * sweep.front().magnitude());
  EXPECT_GT(peak.magnitude(), 1.5 * sweep.back().magnitude());
}

TEST(AcAnalysis, SweepIsLogSpacedAndOrdered) {
  Circuit ckt;
  const NodeId n = ckt.add_node("n");
  ckt.add_resistor(n, kGround, 1.0);
  AcAnalysis ac(ckt);
  const auto sweep = ac.sweep(n, 1e3, 1e6, 4);
  ASSERT_EQ(sweep.size(), 4u);
  EXPECT_NEAR(sweep[0].freq_hz, 1e3, 1e-6);
  EXPECT_NEAR(sweep[1].freq_hz, 1e4, 1.0);
  EXPECT_NEAR(sweep[3].freq_hz, 1e6, 1e-3);
}

TEST(AcAnalysis, InvalidInputsThrow) {
  Circuit ckt;
  const NodeId n = ckt.add_node("n");
  ckt.add_resistor(n, kGround, 1.0);
  AcAnalysis ac(ckt);
  EXPECT_THROW(ac.input_impedance(n, 0.0), CheckError);
  EXPECT_THROW(ac.input_impedance(kGround, 1e6), CheckError);
  EXPECT_THROW(ac.sweep(n, 1e6, 1e3, 10), CheckError);
}

TEST(SpiceExport, EmitsEveryElement) {
  const auto& tech = power::technology_node(7);
  std::array<TileLoad, 4> loads{};
  loads[0] = {0.3, 0.6, 0.0};
  loads[1] = {0.1, 0.0, 0.0};
  const DomainCircuit dom = build_domain_circuit(tech, 0.4, loads);
  const std::string deck = to_spice(dom.circuit, "domain under test");

  EXPECT_NE(deck.find("* domain under test"), std::string::npos);
  // 9 resistors, 4 caps, 1 inductor, 1 source, 2 loads.
  EXPECT_NE(deck.find("R9 "), std::string::npos);
  EXPECT_EQ(deck.find("R10 "), std::string::npos);
  EXPECT_NE(deck.find("C4 "), std::string::npos);
  EXPECT_NE(deck.find("L1 "), std::string::npos);
  EXPECT_NE(deck.find("V1 src 0 DC"), std::string::npos);
  EXPECT_NE(deck.find("I1 tile0 0 DC"), std::string::npos);
  EXPECT_NE(deck.find("ripple m="), std::string::npos);  // load 0 has m>0
  EXPECT_NE(deck.find("I2 tile1 0 DC"), std::string::npos);
  EXPECT_NE(deck.find(".end"), std::string::npos);
}

TEST(SpiceExport, GroundRendersAsZero) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  ckt.add_resistor(a, kGround, 2.0);
  const std::string deck = to_spice(ckt);
  EXPECT_NE(deck.find("R1 a 0 "), std::string::npos);
}

}  // namespace
}  // namespace parm::pdn
