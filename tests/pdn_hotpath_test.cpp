// Hot-path regression tests for the cached PDN solve pipeline.
//
// Golden equivalence: the cached engines (shared LU factorizations,
// rebound source values, allocation-free stepping) must reproduce the
// cold rebuild-everything path to 1e-12 across a (vdd, load) sweep — the
// MNA matrices do not depend on source values, so the two paths perform
// the same arithmetic. Plus unit coverage for the PsnCache LRU memo and
// the degenerate shared-rail aliasing.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "pdn/chip_pdn.hpp"
#include "pdn/psn_cache.hpp"
#include "pdn/psn_estimator.hpp"
#include "pdn/transient.hpp"
#include "power/technology.hpp"

namespace parm::pdn {
namespace {

std::array<TileLoad, 4> loads_for(double base_i, double modulation) {
  return {TileLoad{base_i, modulation, 0.0},
          TileLoad{base_i * 0.6, modulation * 0.5, 0.25},
          TileLoad{0.0, 0.0, 0.0},  // dark tile
          TileLoad{base_i * 1.4, modulation, 0.6}};
}

TEST(PdnHotPath, CachedEstimateMatchesColdAcrossSweep) {
  const auto& tech = power::technology_node(7);
  const PsnEstimator est(tech);
  for (double vdd : {0.4, 0.55, 0.7, 0.8, 0.95}) {
    for (double base_i : {0.05, 0.3, 1.2}) {
      for (double mod : {0.0, 0.3, 0.7}) {
        const auto loads = loads_for(base_i, mod);
        const DomainPsn cached = est.estimate(vdd, loads);
        const DomainPsn cold = est.estimate_cold(vdd, loads);
        EXPECT_NEAR(cached.peak_percent, cold.peak_percent, 1e-12)
            << "vdd=" << vdd << " i=" << base_i << " mod=" << mod;
        EXPECT_NEAR(cached.avg_percent, cold.avg_percent, 1e-12);
        for (std::size_t k = 0; k < 4; ++k) {
          EXPECT_NEAR(cached.tiles[k].peak_percent,
                      cold.tiles[k].peak_percent, 1e-12);
          EXPECT_NEAR(cached.tiles[k].avg_percent,
                      cold.tiles[k].avg_percent, 1e-12);
        }
      }
    }
  }
}

TEST(PdnHotPath, ReuseDisabledConfigTakesColdPath) {
  const auto& tech = power::technology_node(7);
  PsnEstimatorConfig cfg;
  cfg.reuse_factorization = false;
  const PsnEstimator est(tech, cfg);
  const auto loads = loads_for(0.4, 0.5);
  const DomainPsn a = est.estimate(0.7, loads);
  const DomainPsn b = est.estimate_cold(0.7, loads);
  EXPECT_DOUBLE_EQ(a.peak_percent, b.peak_percent);
  EXPECT_DOUBLE_EQ(a.avg_percent, b.avg_percent);
}

TEST(PdnHotPath, AllDarkDomainSkipsSolveOnBothPaths) {
  const auto& tech = power::technology_node(7);
  const PsnEstimator est(tech);
  const std::array<TileLoad, 4> dark{};
  EXPECT_EQ(est.estimate(0.8, dark).peak_percent, 0.0);
  EXPECT_EQ(est.estimate_cold(0.8, dark).peak_percent, 0.0);
}

TEST(PdnHotPath, ConcurrentEstimatesMatchSerial) {
  const auto& tech = power::technology_node(7);
  const PsnEstimator est(tech);
  const std::vector<double> vdds{0.45, 0.6, 0.7, 0.8, 0.9, 0.5, 0.65, 0.85};
  std::vector<DomainPsn> serial(vdds.size());
  for (std::size_t i = 0; i < vdds.size(); ++i) {
    serial[i] = est.estimate(vdds[i], loads_for(0.2 + 0.1 * i, 0.4));
  }
  std::vector<DomainPsn> parallel(vdds.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < vdds.size(); ++i) {
    threads.emplace_back([&, i] {
      parallel[i] = est.estimate(vdds[i], loads_for(0.2 + 0.1 * i, 0.4));
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < vdds.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel[i].peak_percent, serial[i].peak_percent);
    EXPECT_DOUBLE_EQ(parallel[i].avg_percent, serial[i].avg_percent);
  }
}

TEST(PdnHotPath, CopiedEstimatorIsIndependentAndEquivalent) {
  const auto& tech = power::technology_node(7);
  const PsnEstimator original(tech);
  const auto loads = loads_for(0.5, 0.6);
  const DomainPsn before = original.estimate(0.75, loads);
  const PsnEstimator copy(original);
  const DomainPsn after = copy.estimate(0.75, loads);
  EXPECT_DOUBLE_EQ(before.peak_percent, after.peak_percent);
  EXPECT_DOUBLE_EQ(before.avg_percent, after.avg_percent);
}

TEST(ChipPdnHotPath, CachedEstimateMatchesColdWithSharedRail) {
  const auto& tech = power::technology_node(7);
  const ChipPdnModel model(tech, 3, PackageRail{0.5e-3, 3e-12});
  std::vector<std::array<TileLoad, 4>> loads{
      loads_for(0.8, 0.7), loads_for(0.1, 0.2), loads_for(0.0, 0.0)};
  for (double vdd : {0.5, 0.8}) {
    const ChipPsn cached = model.estimate(vdd, loads);
    const ChipPsn cold = model.estimate_cold(vdd, loads);
    EXPECT_NEAR(cached.peak_percent, cold.peak_percent, 1e-12);
    EXPECT_NEAR(cached.avg_percent, cold.avg_percent, 1e-12);
    for (std::size_t d = 0; d < cached.domains.size(); ++d) {
      EXPECT_NEAR(cached.domains[d].peak_percent,
                  cold.domains[d].peak_percent, 1e-12);
      EXPECT_NEAR(cached.domains[d].avg_percent,
                  cold.domains[d].avg_percent, 1e-12);
    }
  }
}

TEST(ChipPdnHotPath, ZeroImpedanceRailMatchesDomainEstimator) {
  // Degenerate rail collapses to direct node aliasing: D isolated domains
  // must match the per-domain estimator exactly (no 1 nΩ placeholder).
  const auto& tech = power::technology_node(7);
  const ChipPdnModel model(tech, 2, PackageRail{0.0, 0.0});
  const PsnEstimator est(tech);
  const std::vector<std::array<TileLoad, 4>> loads{loads_for(0.6, 0.7),
                                                   loads_for(0.15, 0.3)};
  const ChipPsn chip = model.estimate(0.8, loads);
  for (std::size_t d = 0; d < 2; ++d) {
    const DomainPsn solo = est.estimate(0.8, loads[d]);
    EXPECT_NEAR(chip.domains[d].peak_percent, solo.peak_percent, 1e-9);
    EXPECT_NEAR(chip.domains[d].avg_percent, solo.avg_percent, 1e-9);
  }
}

TEST(ChipPdnHotPath, ResistiveOnlyAndInductiveOnlyRailsSolve) {
  // The degenerate single-element rails connect the source directly
  // through the surviving element (no 1 nΩ placeholder impedances). Both
  // aliasing paths must produce finite PSN and the cached engine must
  // match the cold rebuild exactly.
  const auto& tech = power::technology_node(7);
  const std::vector<std::array<TileLoad, 4>> loads{loads_for(0.8, 0.7),
                                                   loads_for(0.3, 0.4)};
  for (const PackageRail rail :
       {PackageRail{0.5e-3, 0.0}, PackageRail{0.0, 3e-12}}) {
    const ChipPdnModel model(tech, 2, rail);
    const ChipPsn cached = model.estimate(0.8, loads);
    const ChipPsn cold = model.estimate_cold(0.8, loads);
    EXPECT_TRUE(std::isfinite(cached.peak_percent));
    EXPECT_GT(cached.peak_percent, 0.0);
    EXPECT_NEAR(cached.peak_percent, cold.peak_percent, 1e-12);
    EXPECT_NEAR(cached.avg_percent, cold.avg_percent, 1e-12);
    for (std::size_t d = 0; d < cached.domains.size(); ++d) {
      EXPECT_NEAR(cached.domains[d].peak_percent,
                  cold.domains[d].peak_percent, 1e-12);
    }
  }
}

TEST(TransientTrace, OfRejectsUnrecordedNodeListingRecordedOnes) {
  Circuit ckt;
  const NodeId s = ckt.add_node("s");
  const NodeId n = ckt.add_node("n");
  ckt.add_voltage_source(s, kGround, 1.0);
  ckt.add_resistor(s, n, 0.5);
  ckt.add_capacitor(n, kGround, 1e-9);
  TransientSolver solver(ckt, 1e-10);
  const TransientTrace trace = solver.run(1e-8, {n});
  EXPECT_NO_THROW(trace.of(n));
  try {
    trace.of(999);
    FAIL() << "of(999) should have thrown";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("999"), std::string::npos) << msg;
    EXPECT_NE(msg.find("recorded"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(n)), std::string::npos) << msg;
  }
}

TEST(PsnCache, KeyIsStableUnderSubQuantumPerturbation) {
  const auto loads = loads_for(0.4, 0.5);
  auto wiggled = loads;
  wiggled[0].i_avg += PsnCache::kCurrentStep * 0.2;
  wiggled[1].phase += PsnCache::kPhaseStep * 0.2;
  EXPECT_EQ(PsnCache::key(0.8, loads), PsnCache::key(0.8, wiggled));
  // A full quantum apart must differ.
  auto moved = loads;
  moved[0].i_avg += PsnCache::kCurrentStep * 1.5;
  EXPECT_NE(PsnCache::key(0.8, loads), PsnCache::key(0.8, moved));
  EXPECT_NE(PsnCache::key(0.8, loads), PsnCache::key(0.81, loads));
}

TEST(PsnCache, QuantizeSnapsLoadsOntoKeyGrid) {
  const auto q = PsnCache::quantize(loads_for(0.4001, 0.501));
  for (const TileLoad& l : q) {
    EXPECT_NEAR(l.i_avg,
                std::round(l.i_avg / PsnCache::kCurrentStep) *
                    PsnCache::kCurrentStep,
                1e-15);
  }
  EXPECT_EQ(PsnCache::key(0.8, q), PsnCache::key(0.8, loads_for(0.4001, 0.501)));
}

TEST(PsnCache, GetReturnsWhatPutStored) {
  PsnCache cache(8);
  DomainPsn psn;
  psn.peak_percent = 3.25;
  psn.avg_percent = 1.5;
  cache.put(42, psn);
  DomainPsn out;
  ASSERT_TRUE(cache.get(42, out));
  EXPECT_DOUBLE_EQ(out.peak_percent, 3.25);
  EXPECT_DOUBLE_EQ(out.avg_percent, 1.5);
  EXPECT_FALSE(cache.get(43, out));
}

TEST(PsnCache, EvictsLeastRecentlyUsedAtCapacity) {
  PsnCache cache(3);
  DomainPsn psn;
  for (std::uint64_t k = 1; k <= 3; ++k) {
    psn.peak_percent = static_cast<double>(k);
    cache.put(k, psn);
  }
  DomainPsn out;
  ASSERT_TRUE(cache.get(1, out));  // refresh 1 → LRU order now 2, 3, 1
  psn.peak_percent = 4.0;
  cache.put(4, psn);  // evicts 2
  EXPECT_FALSE(cache.get(2, out));
  EXPECT_TRUE(cache.get(1, out));
  EXPECT_TRUE(cache.get(3, out));
  EXPECT_TRUE(cache.get(4, out));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(PsnCache, PutRefreshesExistingKeyWithoutGrowth) {
  PsnCache cache(2);
  DomainPsn psn;
  psn.peak_percent = 1.0;
  cache.put(7, psn);
  psn.peak_percent = 2.0;
  cache.put(7, psn);
  EXPECT_EQ(cache.size(), 1u);
  DomainPsn out;
  ASSERT_TRUE(cache.get(7, out));
  EXPECT_DOUBLE_EQ(out.peak_percent, 2.0);
}

TEST(PsnCache, ConcurrentGetPutKeepsEveryValueConsistent) {
  PsnCache cache(64);
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>(i % 32);
        DomainPsn psn;
        psn.peak_percent = static_cast<double>(key);  // value == key
        cache.put(key, psn);
        DomainPsn out;
        if (cache.get(key, out)) {
          // Whatever writer stored it, the value must match the key.
          EXPECT_DOUBLE_EQ(out.peak_percent, static_cast<double>(key));
        }
      }
      (void)t;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.size(), 64u);
}

}  // namespace
}  // namespace parm::pdn
