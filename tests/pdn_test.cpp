// Unit tests for parm_pdn: dense LU, MNA circuit stamps, DC and transient
// analysis vs closed-form RC/RL solutions, waveforms, the domain netlist,
// and the PSN estimator's physical behaviours.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/geometry.hpp"
#include "pdn/circuit.hpp"
#include "pdn/linalg.hpp"
#include "pdn/pdn_netlist.hpp"
#include "pdn/psn_estimator.hpp"
#include "pdn/transient.hpp"
#include "pdn/waveform.hpp"
#include "power/technology.hpp"

namespace parm::pdn {
namespace {

// ----------------------------------------------------------------- linalg

TEST(Linalg, SolvesKnownSystem) {
  Matrix a(3, 3);
  a(0, 0) = 2;  a(0, 1) = 1;  a(0, 2) = -1;
  a(1, 0) = -3; a(1, 1) = -1; a(1, 2) = 2;
  a(2, 0) = -2; a(2, 1) = 1;  a(2, 2) = 2;
  LuFactorization lu(a);
  const auto x = lu.solve({8, -11, -3});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(Linalg, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  LuFactorization lu(a);
  const auto x = lu.solve({3, 5});
  EXPECT_NEAR(x[0], 5.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, SingularMatrixThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(LuFactorization lu(a), CheckError);
}

TEST(Linalg, SolveResidualIsTiny) {
  // Random-ish diagonally dominant system.
  const std::size_t n = 12;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = (i == j) ? 10.0 + static_cast<double>(i)
                         : std::sin(static_cast<double>(i * 7 + j * 3));
    }
  }
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<double>(i) - 3.0;
  LuFactorization lu(a);
  const auto x = lu.solve(b);
  const auto ax = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

// --------------------------------------------------------------- waveform

TEST(Waveform, DcIsConstant) {
  const auto w = CurrentWaveform::dc(0.5);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.5);
  EXPECT_DOUBLE_EQ(w.value(1.23e-6), 0.5);
  EXPECT_DOUBLE_EQ(w.max_slew(), 0.0);
}

TEST(Waveform, RippleLevelsAndAverage) {
  const auto w = CurrentWaveform::ripple(1.0, 0.4, 1e8, 0.0, 0.05);
  const double period = 1e-8;
  // High plateau mid-first-half, low plateau mid-second-half.
  EXPECT_NEAR(w.value(0.25 * period), 1.4, 1e-12);
  EXPECT_NEAR(w.value(0.75 * period), 0.6, 1e-12);
  // Time-average over one period equals i_avg.
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    sum += w.value(period * i / n);
  }
  EXPECT_NEAR(sum / n, 1.0, 1e-3);
  EXPECT_DOUBLE_EQ(w.average(), 1.0);
}

TEST(Waveform, PhaseShifts) {
  const auto a = CurrentWaveform::ripple(1.0, 0.4, 1e8, 0.0);
  const auto b = CurrentWaveform::ripple(1.0, 0.4, 1e8, 0.5);
  const double period = 1e-8;
  EXPECT_NEAR(a.value(0.25 * period), b.value(0.75 * period), 1e-12);
}

TEST(Waveform, MaxSlewMatchesEdges) {
  const auto w = CurrentWaveform::ripple(1.0, 0.5, 1e8, 0.0, 0.05);
  // Swing = 1.0 A over 0.05 of a 10 ns period = 0.5 ns.
  EXPECT_NEAR(w.max_slew(), 1.0 / 0.5e-9, 1e-3);
}

TEST(Waveform, InvalidParamsThrow) {
  EXPECT_THROW(CurrentWaveform::ripple(1.0, 1.5, 1e8), CheckError);
  EXPECT_THROW(CurrentWaveform::ripple(-1.0, 0.2, 1e8), CheckError);
  EXPECT_THROW(CurrentWaveform::ripple(1.0, 0.2, 1e8, 0.0, 0.5),
               CheckError);
}

TEST(Waveform, CompositeSums) {
  CompositeWaveform c;
  c.add(CurrentWaveform::dc(0.2));
  c.add(CurrentWaveform::dc(0.3));
  EXPECT_DOUBLE_EQ(c.value(0.0), 0.5);
  EXPECT_DOUBLE_EQ(c.average(), 0.5);
}

// --------------------------------------------------------------- circuit DC

TEST(CircuitDc, VoltageDivider) {
  Circuit ckt;
  const NodeId top = ckt.add_node("top");
  const NodeId mid = ckt.add_node("mid");
  ckt.add_voltage_source(top, kGround, 10.0);
  ckt.add_resistor(top, mid, 3.0);
  ckt.add_resistor(mid, kGround, 7.0);
  DcSolver dc(ckt);
  EXPECT_NEAR(dc.voltage(top), 10.0, 1e-12);
  EXPECT_NEAR(dc.voltage(mid), 7.0, 1e-12);
}

TEST(CircuitDc, CurrentSourceIrDrop) {
  // V source — R — node with 1 A load: node sags by I·R.
  Circuit ckt;
  const NodeId src = ckt.add_node("src");
  const NodeId tile = ckt.add_node("tile");
  ckt.add_voltage_source(src, kGround, 1.0);
  ckt.add_resistor(src, tile, 0.05);
  ckt.add_current_source(tile, kGround, CurrentWaveform::dc(1.0));
  DcSolver dc(ckt);
  EXPECT_NEAR(dc.voltage(tile), 1.0 - 0.05, 1e-12);
}

TEST(CircuitDc, InductorIsShortAtDc) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  const NodeId b = ckt.add_node("b");
  ckt.add_voltage_source(a, kGround, 2.0);
  ckt.add_inductor(a, b, 1e-9);
  ckt.add_resistor(b, kGround, 4.0);
  DcSolver dc(ckt);
  EXPECT_NEAR(dc.voltage(b), 2.0, 1e-12);
  ASSERT_EQ(dc.inductor_currents().size(), 1u);
  EXPECT_NEAR(dc.inductor_currents()[0], 0.5, 1e-12);
}

TEST(CircuitDc, CapacitorIsOpenAtDc) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  const NodeId b = ckt.add_node("b");
  ckt.add_voltage_source(a, kGround, 5.0);
  ckt.add_resistor(a, b, 1.0);
  ckt.add_capacitor(b, kGround, 1e-9);
  // No DC path from b to ground through the cap: b floats to the source
  // potential through R (no current flows).
  DcSolver dc(ckt);
  EXPECT_NEAR(dc.voltage(b), 5.0, 1e-9);
}

TEST(Circuit, InvalidElementsThrow) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  EXPECT_THROW(ckt.add_resistor(a, a, 1.0), CheckError);
  EXPECT_THROW(ckt.add_resistor(a, kGround, -1.0), CheckError);
  EXPECT_THROW(ckt.add_capacitor(a, 99, 1e-9), CheckError);
}

// ---------------------------------------------------------- transient RC/RL

TEST(Transient, RcStepResponseMatchesAnalytic) {
  // Series R into C, source switched on at t=0 (via DC init at 0 A load
  // and a constant source): charge curve v_c(t) = V(1 − e^{−t/RC}).
  // Build: Vsrc(1 V) — R(1 kΩ) — C(1 µF): tau = 1 ms. Start from the DC
  // point of a *zero-volt* source is not expressible here, so instead we
  // validate the complementary discharge: a current source step.
  const double R = 10.0, C = 1e-6, V = 1.0;
  Circuit ckt;
  const NodeId s = ckt.add_node("s");
  const NodeId n = ckt.add_node("n");
  ckt.add_voltage_source(s, kGround, V);
  ckt.add_resistor(s, n, R);
  ckt.add_capacitor(n, kGround, C);
  // 1 A ripple with period >> runtime acts as a step of +1 A at t≈0
  // relative to the DC point (which uses the 1 A average: node at
  // V − I·R). Instead use DC source only and verify steadiness:
  TransientSolver solver(ckt, 1e-6);
  const auto trace = solver.run(2e-4, {n});
  for (double v : trace.of(n)) EXPECT_NEAR(v, V, 1e-9);
}

TEST(Transient, RcRippleAttenuation) {
  // A decap filters a fast ripple: the node swing must be much smaller
  // than the I·R swing without the cap, and the mean drop ≈ I_avg·R.
  const double R = 0.1, C = 10e-6, V = 1.0;
  const double freq = 1e6;
  Circuit ckt;
  const NodeId s = ckt.add_node("s");
  const NodeId n = ckt.add_node("n");
  ckt.add_voltage_source(s, kGround, V);
  ckt.add_resistor(s, n, R);
  ckt.add_capacitor(n, kGround, C);
  ckt.add_current_source(n, kGround,
                         CurrentWaveform::ripple(1.0, 0.5, freq));
  TransientSolver solver(ckt, 1.0 / freq / 200);
  const auto trace = solver.run(6.0 / freq, {n}, 2.0 / freq);
  const auto& v = trace.of(n);
  double vmin = 1e9, vmax = -1e9, sum = 0;
  for (double x : v) {
    vmin = std::min(vmin, x);
    vmax = std::max(vmax, x);
    sum += x;
  }
  const double swing = vmax - vmin;
  // Without the cap the swing would be 2·m·I·R = 0.1 V. RC = 1 µs,
  // ripple period 1 µs → strong attenuation expected.
  EXPECT_LT(swing, 0.05);
  EXPECT_NEAR(sum / static_cast<double>(v.size()), V - 1.0 * R, 0.01);
}

TEST(Transient, InductorDroopOnCurrentEdge) {
  // L·di/dt droop: with an inductive feed, a ripple edge must dip the
  // node below the pure-resistive level momentarily.
  const double V = 1.0;
  Circuit ckt;
  const NodeId s = ckt.add_node("s");
  const NodeId m = ckt.add_node("m");
  const NodeId n = ckt.add_node("n");
  ckt.add_voltage_source(s, kGround, V);
  ckt.add_resistor(s, m, 0.01);
  ckt.add_inductor(m, n, 50e-12);
  ckt.add_capacitor(n, kGround, 1e-9);
  ckt.add_current_source(n, kGround,
                         CurrentWaveform::ripple(1.0, 0.7, 1e8));
  TransientSolver solver(ckt, 1e-11);
  const auto trace = solver.run(5e-8, {n}, 1e-8);
  double vmin = 1e9;
  for (double x : trace.of(n)) vmin = std::min(vmin, x);
  // Resistive-only worst-case drop is Imax·R = 1.7 × 0.01 = 17 mV; the
  // L·di/dt adds a visibly deeper transient dip.
  EXPECT_LT(vmin, V - 0.020);
}

TEST(Transient, EnergyNeverCreated) {
  // Node voltage may ring but must stay within [0, V] for a passive
  // network with a non-negative load.
  Circuit ckt;
  const NodeId s = ckt.add_node("s");
  const NodeId n = ckt.add_node("n");
  ckt.add_voltage_source(s, kGround, 1.0);
  ckt.add_resistor(s, n, 0.05);
  ckt.add_capacitor(n, kGround, 5e-9);
  ckt.add_current_source(n, kGround,
                         CurrentWaveform::ripple(0.5, 0.6, 1e8));
  TransientSolver solver(ckt, 5e-11);
  const auto trace = solver.run(1e-7, {n});
  for (double v : trace.of(n)) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.000001);
  }
}

TEST(Transient, RecordWindowRespected) {
  Circuit ckt;
  const NodeId s = ckt.add_node("s");
  ckt.add_voltage_source(s, kGround, 1.0);
  ckt.add_resistor(s, kGround, 1.0);
  TransientSolver solver(ckt, 1e-9);
  const auto trace = solver.run(1e-7, {s}, 5e-8);
  ASSERT_FALSE(trace.times.empty());
  EXPECT_GE(trace.times.front(), 5e-8);
  EXPECT_THROW(trace.of(999), CheckError);
}

// ------------------------------------------------------------ domain netlist

TEST(DomainNetlist, StructureMatchesFig2) {
  const auto& tech = power::technology_node(7);
  std::array<TileLoad, 4> loads{};
  loads[0] = {0.3, 0.5, 0.0};
  const DomainCircuit dom = build_domain_circuit(tech, 0.4, loads);
  // src, pkg, bump + 4 tiles (+ ground).
  EXPECT_EQ(dom.circuit.node_count(), 8);
  // Rb + 4 vertical + 4 lateral resistors.
  EXPECT_EQ(dom.circuit.resistor_count(), 9u);
  EXPECT_EQ(dom.circuit.inductor_count(), 1u);
  EXPECT_EQ(dom.circuit.capacitor_count(), 4u);
  EXPECT_EQ(dom.circuit.voltage_source_count(), 1u);
  EXPECT_EQ(dom.circuit.current_source_count(), 1u);  // only loaded tiles
}

TEST(DomainNetlist, PartitionBuilderPadsShortPartitions) {
  const auto& tech = power::technology_node(7);
  std::vector<TileLoad> loads = {{0.3, 0.5, 0.0}, {0.2, 0.4, 0.0}};
  const DomainCircuit dom =
      build_partition_circuit(tech, 0.4, loads, "ring domain 0");
  // Same fixed 2x2 structure as the full-domain builder; the two missing
  // tiles are dark (decap present, no current source).
  EXPECT_EQ(dom.circuit.node_count(), 8);
  EXPECT_EQ(dom.circuit.capacitor_count(), 4u);
  EXPECT_EQ(dom.circuit.current_source_count(), 2u);
}

TEST(DomainNetlist, PartitionBuilderRejectsIrregularPartitions) {
  const auto& tech = power::technology_node(7);
  // Oversized partition: the error must name the offending partition.
  const std::vector<TileLoad> five(5, TileLoad{0.1, 0.3, 0.0});
  try {
    build_partition_circuit(tech, 0.4, five, "file:ring.topo domain 2");
    FAIL() << "oversized partition accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("file:ring.topo domain 2"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("5"), std::string::npos);
  }
  EXPECT_THROW(build_partition_circuit(tech, 0.4, {}, "empty domain"),
               CheckError);
}

TEST(DomainNetlist, OddMeshDimensionsRejectedWithDims) {
  // Domain partitioning needs even mesh dimensions; the rejection names
  // the actual dims so config mistakes are self-explanatory.
  try {
    const MeshGeometry bad(5, 6);
    FAIL() << "odd mesh width accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("5x6"), std::string::npos);
  }
  try {
    const MeshGeometry bad(1, 2);
    FAIL() << "degenerate mesh accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("1x2"), std::string::npos);
  }
}

TEST(DomainNetlist, ActivityModulationMapping) {
  EXPECT_NEAR(activity_to_modulation(0.0), 0.3, 1e-12);
  EXPECT_NEAR(activity_to_modulation(0.8), 0.7, 1e-12);
  EXPECT_NEAR(activity_to_modulation(1.0), 0.8, 1e-12);
  EXPECT_LE(activity_to_modulation(2.0), 0.85);
  EXPECT_GT(kHighActivityModulation, kLowActivityModulation);
}

// ------------------------------------------------------------ psn estimator

class PsnEstimatorTest : public ::testing::Test {
 protected:
  const power::TechnologyNode& tech_ = power::technology_node(7);
  PsnEstimator est_{tech_};
};

TEST_F(PsnEstimatorTest, AllDarkDomainIsQuiet) {
  const DomainPsn psn = est_.estimate(0.4, {});
  EXPECT_DOUBLE_EQ(psn.peak_percent, 0.0);
  EXPECT_DOUBLE_EQ(psn.avg_percent, 0.0);
}

TEST_F(PsnEstimatorTest, PsnGrowsWithCurrent) {
  std::array<TileLoad, 4> lo{}, hi{};
  lo[0] = {0.2, 0.5, 0.0};
  hi[0] = {0.4, 0.5, 0.0};
  EXPECT_LT(est_.estimate(0.4, lo).peak_percent,
            est_.estimate(0.4, hi).peak_percent);
}

TEST_F(PsnEstimatorTest, PsnGrowsWithModulation) {
  std::array<TileLoad, 4> lo{}, hi{};
  lo[0] = {0.3, 0.3, 0.0};
  hi[0] = {0.3, 0.7, 0.0};
  EXPECT_LT(est_.estimate(0.4, lo).peak_percent,
            est_.estimate(0.4, hi).peak_percent);
}

TEST_F(PsnEstimatorTest, LoadedTileIsNoisiest) {
  std::array<TileLoad, 4> loads{};
  loads[2] = {0.35, 0.6, 0.0};
  const DomainPsn psn = est_.estimate(0.4, loads);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_LE(psn.tiles[k].peak_percent, psn.tiles[2].peak_percent + 1e-9);
  }
}

TEST_F(PsnEstimatorTest, NeighborCouplingFallsWithDistance) {
  // Aggressor in slot 0; victims in slot 1 (1 hop) and slot 3 (diagonal,
  // 2 hops) observe coupled noise; the diagonal one observes less.
  std::array<TileLoad, 4> loads{};
  loads[0] = {0.4, 0.7, 0.0};
  const DomainPsn psn = est_.estimate(0.4, loads);
  EXPECT_GT(psn.tiles[1].peak_percent, 0.0);
  EXPECT_GT(psn.tiles[1].peak_percent, psn.tiles[3].peak_percent);
}

TEST_F(PsnEstimatorTest, InterferenceRatioHlExceedsHhAndLl) {
  // The Fig. 3(b) property, as a hard invariant of the model: the
  // normalized interference (pair peak / alone peak at the victim) is
  // strongest for unlike activity pairs.
  const double vdd = 0.4;
  const double ih = 0.30, il = 0.14;
  const double mh = kHighActivityModulation, ml = kLowActivityModulation;
  auto victim_ratio = [&](double ia, double ma, double ib, double mb) {
    std::array<TileLoad, 4> pair{}, alone{};
    pair[0] = {ia, ma, 0.0};
    pair[1] = {ib, mb, 0.0};
    alone[1] = {ib, mb, 0.0};
    return est_.estimate(vdd, pair).tiles[1].peak_percent /
           est_.estimate(vdd, alone).tiles[1].peak_percent;
  };
  const double hl = victim_ratio(ih, mh, il, ml);
  const double hh = victim_ratio(ih, mh, ih, mh);
  const double ll = victim_ratio(il, ml, il, ml);
  EXPECT_GT(hl, hh);
  EXPECT_GT(hl, ll);
}

TEST_F(PsnEstimatorTest, WorstCasePsnGrowsAcrossTechNodes) {
  // Fig. 1: identical relative workload, peak PSN % grows as we scale
  // from 45 nm to 7 nm.
  double prev = 0.0;
  for (const auto& tech : power::all_technology_nodes()) {
    PsnEstimator est(tech);
    // Same normalized stress at each node's NTC point: current chosen
    // proportional to the node's own core draw is done by the Fig. 1
    // bench; here a fixed synthetic load shows the PDN trend alone.
    std::array<TileLoad, 4> loads{};
    for (auto& l : loads) l = {0.3, 0.7, 0.0};
    const double psn = est.estimate(tech.vdd_ntc, loads).peak_percent;
    EXPECT_GT(psn, prev * 0.8);  // broadly increasing (allow small dips)
    prev = psn;
  }
  EXPECT_GT(prev, 3.0);  // the 7 nm point is the most fragile
}

TEST_F(PsnEstimatorTest, ConfigValidation) {
  PsnEstimatorConfig bad;
  bad.steps_per_period = 2;
  EXPECT_THROW(PsnEstimator(tech_, bad), CheckError);
}

}  // namespace
}  // namespace parm::pdn
