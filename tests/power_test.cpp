// Unit tests for parm_power: technology table, V/f model, core and router
// power models, dark-silicon power ledger.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "power/chip_power.hpp"
#include "power/core_power.hpp"
#include "power/router_power.hpp"
#include "power/technology.hpp"
#include "power/vf_model.hpp"

namespace parm::power {
namespace {

// ------------------------------------------------------------- technology

TEST(Technology, AllNodesPresentInOrder) {
  const auto& nodes = all_technology_nodes();
  ASSERT_EQ(nodes.size(), 6u);
  const int expect[] = {45, 32, 22, 14, 10, 7};
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i].feature_nm, expect[i]);
  }
}

TEST(Technology, LookupByFeatureSize) {
  EXPECT_EQ(technology_node(7).feature_nm, 7);
  EXPECT_EQ(technology_node(45).vdd_nominal, 1.0);
  EXPECT_THROW(technology_node(5), CheckError);
}

TEST(Technology, ScalingTrendsHoldAcrossNodes) {
  const auto& nodes = all_technology_nodes();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    // Shrinking node: NTC supply drops, wires get more resistive,
    // per-tile decap shrinks — the drivers of the Fig. 1 trend.
    EXPECT_LT(nodes[i].vdd_ntc, nodes[i - 1].vdd_ntc);
    EXPECT_GT(nodes[i].pdn_r_wire, nodes[i - 1].pdn_r_wire);
    EXPECT_LT(nodes[i].pdn_c_decap, nodes[i - 1].pdn_c_decap);
    EXPECT_LT(nodes[i].vth, nodes[i - 1].vth);
  }
}

TEST(Technology, SevenNmMatchesPaperAnchors) {
  const auto& n7 = technology_node(7);
  EXPECT_DOUBLE_EQ(n7.vdd_ntc, 0.40);          // NTC point (section 5.1)
  EXPECT_DOUBLE_EQ(n7.vdd_nominal, 0.80);      // top DVS level
  EXPECT_NEAR(n7.router_area_um2, 71300, 1);   // section 4.4
  EXPECT_NEAR(n7.panr_logic_area_um2, 115, 1);
  EXPECT_NEAR(n7.sensor_network_area_um2, 413, 1);
  EXPECT_NEAR(n7.core_area_um2, 4.0e6, 1);
}

// ---------------------------------------------------------------- vfmodel

TEST(VfModel, CalibratedAtNominal) {
  const auto& n7 = technology_node(7);
  const VoltageFrequencyModel vf(n7);
  EXPECT_NEAR(vf.fmax(n7.vdd_nominal), n7.f_at_nominal, 1.0);
}

TEST(VfModel, MonotonicallyIncreasing) {
  const VoltageFrequencyModel vf(technology_node(7));
  double prev = 0.0;
  for (double v = 0.30; v <= 0.85; v += 0.01) {
    const double f = vf.fmax(v);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(VfModel, NearThresholdIsSteep) {
  // Near threshold, a 0.1 V step changes frequency much more than at
  // nominal — the NTC premise.
  const VoltageFrequencyModel vf(technology_node(7));
  const double low_gain = vf.fmax(0.5) / vf.fmax(0.4);
  const double high_gain = vf.fmax(0.8) / vf.fmax(0.7);
  EXPECT_GT(low_gain, high_gain);
  EXPECT_GT(low_gain, 1.4);
}

TEST(VfModel, MinVddInvertsFmax) {
  const VoltageFrequencyModel vf(technology_node(7));
  for (double v : {0.45, 0.55, 0.65, 0.75}) {
    const double f = vf.fmax(v);
    EXPECT_NEAR(vf.min_vdd_for_frequency(f, 0.8), v, 1e-6);
  }
  EXPECT_THROW(vf.min_vdd_for_frequency(10e9, 0.8), CheckError);
}

TEST(VfModel, SensitivityIsPositiveAndDropsWithVdd) {
  const VoltageFrequencyModel vf(technology_node(7));
  const double s_low = vf.frequency_sensitivity(0.4);
  const double s_high = vf.frequency_sensitivity(0.8);
  EXPECT_GT(s_low, s_high);
  EXPECT_GT(s_high, 0.0);
}

TEST(VfModel, BelowThresholdThrows) {
  const VoltageFrequencyModel vf(technology_node(7));
  EXPECT_THROW(vf.fmax(0.2), CheckError);
}

// --------------------------------------------------------------- corepower

TEST(CorePower, SevenNmCoreAnchor) {
  // ~1.3 W mobile core at nominal 0.8 V / 2 GHz, high activity.
  const auto& n7 = technology_node(7);
  const CorePowerModel cp(n7);
  const double p = cp.total_power(0.8, 2.0e9, 0.9);
  EXPECT_GT(p, 1.0);
  EXPECT_LT(p, 1.6);
}

TEST(CorePower, DarkSiliconBindsAtNominalNotAtNtc) {
  // 60 tiles at nominal exceed the 65 W DsPB; at NTC they fit easily —
  // the premise of the paper's dark-silicon setting.
  const auto& n7 = technology_node(7);
  const VoltageFrequencyModel vf(n7);
  const CorePowerModel cp(n7);
  const double at_nominal = 60 * cp.total_power(0.8, vf.fmax(0.8), 0.9);
  const double at_ntc = 60 * cp.total_power(0.4, vf.fmax(0.4), 0.9);
  EXPECT_GT(at_nominal, 65.0);
  EXPECT_LT(at_ntc, 65.0 * 0.5);
}

TEST(CorePower, MonotonicInOperatingPoint) {
  const CorePowerModel cp(technology_node(7));
  EXPECT_LT(cp.dynamic_power(0.5, 1e9, 0.5), cp.dynamic_power(0.6, 1e9, 0.5));
  EXPECT_LT(cp.dynamic_power(0.5, 1e9, 0.5), cp.dynamic_power(0.5, 2e9, 0.5));
  EXPECT_LT(cp.dynamic_power(0.5, 1e9, 0.4), cp.dynamic_power(0.5, 1e9, 0.8));
  EXPECT_LT(cp.leakage_power(0.4), cp.leakage_power(0.8));
}

TEST(CorePower, SupplyCurrentIsPowerOverVdd) {
  const CorePowerModel cp(technology_node(7));
  const double p = cp.total_power(0.6, 1.2e9, 0.7);
  EXPECT_NEAR(cp.supply_current(0.6, 1.2e9, 0.7), p / 0.6, 1e-12);
}

TEST(CorePower, ActivityClassification) {
  EXPECT_EQ(classify_activity(0.2), ActivityClass::Low);
  EXPECT_EQ(classify_activity(0.49), ActivityClass::Low);
  EXPECT_EQ(classify_activity(0.5), ActivityClass::High);
  EXPECT_EQ(classify_activity(0.95), ActivityClass::High);
  EXPECT_STREQ(to_string(ActivityClass::High), "High");
}

TEST(CorePower, InvalidInputsThrow) {
  const CorePowerModel cp(technology_node(7));
  EXPECT_THROW(cp.dynamic_power(0.5, 1e9, 1.5), CheckError);
  EXPECT_THROW(cp.dynamic_power(-0.1, 1e9, 0.5), CheckError);
}

// ------------------------------------------------------------- routerpower

TEST(RouterPower, AnchorNearPaperOverheadBase) {
  // Paper section 4.4: PANR logic is ~1 mW ≈ 3 % of router power, so the
  // busy router should burn a few tens of mW at nominal.
  const RouterPowerModel rp(technology_node(7));
  const double p = rp.total_power(0.8, 0.1e9);  // 0.1 flits/ns
  EXPECT_GT(p, 0.02);
  EXPECT_LT(p, 0.1);
}

TEST(RouterPower, PanrOverheadMatchesPaper) {
  const RouterPowerModel rp(technology_node(7));
  EXPECT_NEAR(rp.panr_overhead_power(), 1e-3, 1e-9);
  EXPECT_NEAR(rp.panr_area_overhead_fraction(), 115.0 / 71300.0, 1e-9);
  const double base = rp.total_power(0.8, 0.05e9, false);
  const double with = rp.total_power(0.8, 0.05e9, true);
  EXPECT_NEAR(with - base, 1e-3, 1e-12);
}

TEST(RouterPower, EnergyScalesQuadraticallyWithVdd) {
  const RouterPowerModel rp(technology_node(7));
  EXPECT_NEAR(rp.energy_per_flit(0.4) / rp.energy_per_flit(0.8), 0.25,
              1e-9);
}

TEST(RouterPower, ZeroTrafficIsStaticOnly) {
  const RouterPowerModel rp(technology_node(7));
  EXPECT_DOUBLE_EQ(rp.total_power(0.8, 0.0), rp.static_power(0.8));
}

// ----------------------------------------------------------------- ledger

TEST(PowerLedger, ReserveAndRelease) {
  PowerLedger ledger(65.0);
  EXPECT_TRUE(ledger.reserve(1, 30.0));
  EXPECT_TRUE(ledger.reserve(2, 30.0));
  EXPECT_FALSE(ledger.reserve(3, 10.0));  // would exceed 65 W
  EXPECT_NEAR(ledger.headroom(), 5.0, 1e-12);
  ledger.release(1);
  EXPECT_TRUE(ledger.reserve(3, 10.0));
  EXPECT_EQ(ledger.reservation_count(), 2u);
}

TEST(PowerLedger, DoubleReserveThrows) {
  PowerLedger ledger(65.0);
  EXPECT_TRUE(ledger.reserve(1, 10.0));
  EXPECT_THROW(ledger.reserve(1, 5.0), CheckError);
}

TEST(PowerLedger, ReleaseUnknownIsNoop) {
  PowerLedger ledger(65.0);
  ledger.release(42);
  EXPECT_EQ(ledger.reserved(), 0.0);
}

TEST(PowerLedger, ExactFitAllowed) {
  PowerLedger ledger(10.0);
  EXPECT_TRUE(ledger.reserve(1, 10.0));
  EXPECT_FALSE(ledger.fits(0.1));
}

}  // namespace
}  // namespace parm::power
