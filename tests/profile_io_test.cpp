// Tests for offline-profile serialization (parm-profile v1 text format).
#include <gtest/gtest.h>

#include "appmodel/profile_io.hpp"
#include "common/check.hpp"
#include "power/technology.hpp"
#include "power/vf_model.hpp"

namespace parm::appmodel {
namespace {

TEST(ProfileIo, RoundTripPreservesEverything) {
  for (const char* name : {"fft", "swaptions", "dedup"}) {
    const ApplicationProfile original(benchmark_by_name(name), 321);
    const std::string text = to_text(original);
    const ApplicationProfile restored = from_text(text);

    EXPECT_EQ(restored.benchmark().name, name);
    ASSERT_EQ(restored.dops(), original.dops());
    for (int dop : original.dops()) {
      const DopVariant& a = original.variant(dop);
      const DopVariant& b = restored.variant(dop);
      EXPECT_DOUBLE_EQ(a.critical_path_cycles, b.critical_path_cycles);
      ASSERT_EQ(a.tasks.size(), b.tasks.size());
      for (std::size_t t = 0; t < a.tasks.size(); ++t) {
        EXPECT_DOUBLE_EQ(a.tasks[t].work_cycles, b.tasks[t].work_cycles);
        EXPECT_DOUBLE_EQ(a.tasks[t].activity, b.tasks[t].activity);
      }
      ASSERT_EQ(a.graph.edges().size(), b.graph.edges().size());
      for (std::size_t e = 0; e < a.graph.edges().size(); ++e) {
        EXPECT_EQ(a.graph.edges()[e].src, b.graph.edges()[e].src);
        EXPECT_EQ(a.graph.edges()[e].dst, b.graph.edges()[e].dst);
        EXPECT_DOUBLE_EQ(a.graph.edges()[e].volume_flits,
                         b.graph.edges()[e].volume_flits);
      }
    }
  }
}

TEST(ProfileIo, RestoredProfileComputesIdenticalWcet) {
  const ApplicationProfile original(benchmark_by_name("cholesky"), 7);
  const ApplicationProfile restored = from_text(to_text(original));
  const power::VoltageFrequencyModel vf(power::technology_node(7));
  for (int dop : original.dops()) {
    for (double vdd : {0.4, 0.6, 0.8}) {
      EXPECT_DOUBLE_EQ(original.wcet_seconds(vdd, dop, vf),
                       restored.wcet_seconds(vdd, dop, vf));
    }
  }
}

TEST(ProfileIo, TextFormatIsStable) {
  const ApplicationProfile p(benchmark_by_name("fft"), 1);
  const std::string text = to_text(p);
  EXPECT_EQ(text.rfind("parm-profile v1\n", 0), 0u);
  EXPECT_NE(text.find("benchmark fft\n"), std::string::npos);
  EXPECT_NE(text.find("variant 4 "), std::string::npos);
  EXPECT_NE(text.find("task 0 "), std::string::npos);
  EXPECT_NE(text.find("edge "), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 4), "end\n");
}

TEST(ProfileIo, RejectsMalformedDocuments) {
  EXPECT_THROW(from_text(""), CheckError);
  EXPECT_THROW(from_text("wrong header\n"), CheckError);
  EXPECT_THROW(from_text("parm-profile v1\nbenchmark nosuchapp\nend\n"),
               CheckError);
  // Task line outside a variant.
  EXPECT_THROW(from_text("parm-profile v1\nbenchmark fft\n"
                         "task 0 1.0 0.5\nend\n"),
               CheckError);
  // Missing 'end'.
  EXPECT_THROW(from_text("parm-profile v1\nbenchmark fft\n"
                         "variant 4 1e8\n"
                         "task 0 1e6 0.5\ntask 1 1e6 0.5\n"
                         "task 2 1e6 0.5\ntask 3 1e6 0.5\n"),
               CheckError);
  // Non-dense task indices.
  EXPECT_THROW(from_text("parm-profile v1\nbenchmark fft\n"
                         "variant 4 1e8\n"
                         "task 1 1e6 0.5\nend\n"),
               CheckError);
  // Cyclic edge set.
  EXPECT_THROW(from_text("parm-profile v1\nbenchmark fft\n"
                         "variant 4 1e8\n"
                         "task 0 1e6 0.5\ntask 1 1e6 0.5\n"
                         "task 2 1e6 0.5\ntask 3 1e6 0.5\n"
                         "edge 0 1 1.0\nedge 1 0 1.0\nend\n"),
               CheckError);
}

TEST(ProfileIo, FromPartsValidates) {
  const auto& bench = benchmark_by_name("fft");
  std::vector<DopVariant> variants;
  EXPECT_THROW(ApplicationProfile::from_parts(bench, variants), CheckError);

  DopVariant v;
  v.dop = 4;
  v.critical_path_cycles = 1e8;
  v.tasks.resize(4);
  for (auto& t : v.tasks) {
    t.work_cycles = 1e6;
    t.activity = 0.5;
  }
  v.graph = TaskGraph(4, {{0, 1, 1.0}});
  variants.push_back(v);
  variants.push_back(v);  // duplicate DoP
  EXPECT_THROW(ApplicationProfile::from_parts(bench, variants), CheckError);

  variants.pop_back();
  const ApplicationProfile ok =
      ApplicationProfile::from_parts(bench, variants);
  EXPECT_EQ(ok.dops(), std::vector<int>{4});
}

}  // namespace
}  // namespace parm::appmodel
