// Property-based tests (parameterized sweeps) over the core invariants:
//  - every routing policy delivers all traffic, deadlock-free, under every
//    synthetic pattern and load level;
//  - simulated paths never violate the west-first turn model;
//  - PSN grows monotonically with Vdd at fixed relative workload
//    (Fig. 3(a)'s premise);
//  - both mappers produce structurally valid mappings for every
//    (benchmark, DoP, seed) combination;
//  - clustering covers all tasks with ≤4-task clusters for random graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "appmodel/application.hpp"
#include "common/rng.hpp"
#include "mapping/clustering.hpp"
#include "mapping/hm_mapper.hpp"
#include "mapping/parm_mapper.hpp"
#include "noc/network.hpp"
#include "noc/traffic.hpp"
#include "noc/window_sim.hpp"
#include "pdn/psn_estimator.hpp"
#include "power/core_power.hpp"
#include "power/router_power.hpp"
#include "power/vf_model.hpp"

namespace parm {
namespace {

// ------------------------------------------------- routing delivery sweep

using RoutingCase = std::tuple<const char* /*algo*/, const char* /*pattern*/,
                               double /*load*/>;

class RoutingDelivery : public ::testing::TestWithParam<RoutingCase> {};

TEST_P(RoutingDelivery, AllTrafficDeliveredNoDeadlock) {
  const auto [algo, pattern, load] = GetParam();
  const MeshGeometry mesh(8, 4);
  noc::NocConfig cfg;
  cfg.buffer_depth = 4;
  noc::Network net(mesh, cfg, noc::make_routing(algo));

  Rng rng(1234);
  std::vector<noc::TrafficFlow> flows;
  const std::string p = pattern;
  if (p == "uniform") {
    flows = noc::uniform_random_flows(mesh, load, rng);
  } else if (p == "hotspot") {
    flows = noc::hotspot_flows(mesh, mesh.tile_id({4, 2}), load);
  } else {
    flows = noc::transpose_flows(mesh, load);
  }
  // Give PANR some PSN texture to react to.
  std::vector<double> psn(static_cast<std::size_t>(mesh.tile_count()));
  for (auto& x : psn) x = rng.uniform(0.0, 6.0);
  net.set_tile_psn(psn);

  noc::TrafficGenerator gen(flows);
  for (int i = 0; i < 2000; ++i) {
    gen.tick(net);
    net.step();
  }
  // Stop injecting and drain; everything injected must be delivered.
  for (int i = 0; i < 60000 && net.in_flight_flits() > 0; ++i) net.step();
  EXPECT_EQ(net.in_flight_flits(), 0u)
      << algo << "/" << pattern << " load=" << load;
  EXPECT_EQ(net.total_delivered_flits(), net.total_injected_flits());
}

INSTANTIATE_TEST_SUITE_P(
    AlgoPatternLoad, RoutingDelivery,
    ::testing::Combine(::testing::Values("XY", "WestFirst", "ICON", "PANR"),
                       ::testing::Values("uniform", "hotspot", "transpose"),
                       ::testing::Values(0.02, 0.1, 0.3)),
    [](const ::testing::TestParamInfo<RoutingCase>& param_info) {
      const double load = std::get<2>(param_info.param);
      return std::string(std::get<0>(param_info.param)) + "_" +
             std::get<1>(param_info.param) + "_" +
             (load < 0.05 ? "light" : load < 0.2 ? "medium" : "heavy");
    });

// ------------------------------------------------- west-first turn model

class TurnModelProperty
    : public ::testing::TestWithParam<const char*> {};

TEST_P(TurnModelProperty, NoWestTurnAfterLeavingWest) {
  // Walk every (src, dst) pair hop by hop under the policy with randomized
  // state inputs: once a packet moves E/N/S it must never turn W again
  // (the west-first deadlock-freedom condition), and every hop must make
  // progress (minimal routing, bounded path length).
  const MeshGeometry mesh(6, 6);
  const auto routing = noc::make_routing(GetParam());
  Rng rng(7);
  std::vector<double> psn(static_cast<std::size_t>(mesh.tile_count()));
  std::vector<double> rate(static_cast<std::size_t>(mesh.tile_count()));
  for (auto& x : psn) x = rng.uniform(0.0, 8.0);
  for (auto& x : rate) x = rng.uniform(0.0, 2.0);
  noc::RoutingState state;
  state.tile_psn_percent = &psn;
  state.router_incoming_rate = &rate;

  for (TileId src = 0; src < mesh.tile_count(); ++src) {
    for (TileId dst = 0; dst < mesh.tile_count(); ++dst) {
      if (src == dst) continue;
      TileId cur = src;
      bool moved_non_west = false;
      int hops = 0;
      const int max_hops = mesh.hop_distance(src, dst);
      while (cur != dst) {
        state.input_buffer_occupancy = rng.uniform01();
        const Direction d = routing->route(mesh, cur, dst, state);
        if (d == Direction::West) {
          EXPECT_FALSE(moved_non_west)
          << GetParam() << ": west turn after leaving west, src=" << src
          << " dst=" << dst;
        } else {
          moved_non_west = true;
        }
        const TileId next = mesh.neighbor(cur, d);
        ASSERT_NE(next, kInvalidTile);
        ASSERT_LT(mesh.hop_distance(next, dst), mesh.hop_distance(cur, dst))
            << GetParam() << " must route minimally";
        cur = next;
        ASSERT_LE(++hops, max_hops);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, TurnModelProperty,
                         ::testing::Values("XY", "WestFirst", "ICON",
                                           "PANR"));

// ------------------------------------------------------ PSN monotonicity

class PsnVsVdd : public ::testing::TestWithParam<std::tuple<double, double>> {
};

TEST_P(PsnVsVdd, PeakPsnGrowsWithVdd) {
  // Fig. 3(a): at any activity level, raising the domain supply raises
  // peak PSN percent (current grows ~V·f while the margin grows only ~V).
  const auto [v_lo, v_hi] = GetParam();
  const auto& tech = power::technology_node(7);
  const power::VoltageFrequencyModel vf(tech);
  const power::CorePowerModel cp(tech);
  pdn::PsnEstimator est(tech);
  auto run = [&](double vdd) {
    std::array<pdn::TileLoad, 4> loads{};
    for (std::size_t k = 0; k < 4; ++k) {
      const double act = 0.5 + 0.1 * static_cast<double>(k);
      loads[k] = {cp.supply_current(vdd, vf.fmax(vdd), act),
                  pdn::activity_to_modulation(act),
                  0.25 * static_cast<double>(k)};
    }
    return est.estimate(vdd, loads).peak_percent;
  };
  EXPECT_LT(run(v_lo), run(v_hi));
}

INSTANTIATE_TEST_SUITE_P(
    VddPairs, PsnVsVdd,
    ::testing::Values(std::tuple(0.4, 0.5), std::tuple(0.5, 0.6),
                      std::tuple(0.6, 0.7), std::tuple(0.7, 0.8),
                      std::tuple(0.4, 0.8)));

// ------------------------------------------------------- mapper validity

using MapperCase = std::tuple<const char* /*bench*/, int /*dop*/,
                              std::uint64_t /*seed*/>;

class MapperValidity : public ::testing::TestWithParam<MapperCase> {};

TEST_P(MapperValidity, BothMappersProduceValidMappings) {
  const auto [bench, dop, seed] = GetParam();
  const appmodel::ApplicationProfile profile(
      appmodel::benchmark_by_name(bench), seed);
  if (std::find(profile.dops().begin(), profile.dops().end(), dop) ==
      profile.dops().end()) {
    GTEST_SKIP() << bench << " caps DoP below " << dop;
  }
  const auto& variant = profile.variant(dop);
  cmp::Platform platform{cmp::PlatformConfig{}};

  const auto pm = mapping::ParmMapper().map(platform, variant);
  ASSERT_TRUE(pm.has_value());
  EXPECT_TRUE(mapping::validate_mapping(platform, variant, *pm));

  const auto hm = mapping::HarmonicMapper().map(platform, variant);
  ASSERT_TRUE(hm.has_value());
  EXPECT_TRUE(mapping::validate_mapping(platform, variant, *hm));

  // PARM never splits an app's domain with another app: each used domain
  // hosts at most 4 of its tasks by construction.
  std::map<DomainId, int> count;
  for (const auto& p : *pm) {
    ++count[platform.mesh().domain_of(p.tile)];
  }
  for (const auto& [d, n] : count) EXPECT_LE(n, 4);
}

INSTANTIATE_TEST_SUITE_P(
    BenchDopSeed, MapperValidity,
    ::testing::Combine(::testing::Values("fft", "cholesky", "swaptions",
                                         "dedup", "radix"),
                       ::testing::Values(4, 8, 12, 16, 32),
                       ::testing::Values(1ull, 2ull, 3ull)),
    [](const ::testing::TestParamInfo<MapperCase>& param_info) {
      return std::string(std::get<0>(param_info.param)) + "_d" +
             std::to_string(std::get<1>(param_info.param)) + "_s" +
             std::to_string(std::get<2>(param_info.param));
    });

// -------------------------------------------------- clustering invariants

class ClusteringProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClusteringProperty, CoversAllTasksInSmallPureClusters) {
  const int dop = GetParam();
  Rng rng(static_cast<std::uint64_t>(dop) * 131);
  for (int trial = 0; trial < 10; ++trial) {
    appmodel::DopVariant v;
    v.dop = dop;
    v.tasks.resize(static_cast<std::size_t>(dop));
    for (auto& t : v.tasks) {
      t.work_cycles = rng.uniform(1e5, 1e7);
      t.activity = rng.uniform(0.05, 0.95);
    }
    v.graph = appmodel::TaskGraph::generate(
        appmodel::GraphShape::Random, dop, rng.uniform(1.0, 100.0), rng);
    const auto clusters = mapping::cluster_tasks(v);
    std::vector<int> seen(static_cast<std::size_t>(dop), 0);
    int mixed = 0;
    for (const auto& c : clusters) {
      EXPECT_GE(c.tasks.size(), 1u);
      EXPECT_LE(c.tasks.size(), 4u);
      mixed += c.mixed_activity;
      for (auto t : c.tasks) ++seen[static_cast<std::size_t>(t)];
    }
    for (int s : seen) EXPECT_EQ(s, 1);
    EXPECT_LE(mixed, 1);  // dop is a multiple of 4 → one merged tail max
  }
}

INSTANTIATE_TEST_SUITE_P(Dops, ClusteringProperty,
                         ::testing::Values(4, 8, 12, 16, 20, 24, 28, 32));

// ------------------------------------------------ degraded-mode invariants

namespace {

/// Both orientations of the full-duplex link between `a` and `b`.
void mark_link_dead(std::set<std::pair<TileId, TileId>>& dead, TileId a,
                    TileId b) {
  dead.insert({a, b});
  dead.insert({b, a});
}

}  // namespace

TEST(FaultRoutingProperty, NoFlitIsDeliveredThroughAFailedLink) {
  // Kill several links and one router on the paper's 10x6 mesh, push
  // random traffic through degraded (BFS-tree) routing, and check every
  // traced head-flit path: no hop may cross a dead link or transit the
  // dead router, and every flit is either delivered or accounted as
  // fault-dropped.
  const MeshGeometry mesh(10, 6);
  noc::NocConfig cfg;
  cfg.buffer_depth = 4;
  noc::Network net(mesh, cfg, noc::make_routing("PANR"));

  std::set<std::pair<TileId, TileId>> dead_links;
  const auto kill_link = [&](TileId t, Direction d) {
    net.set_link_fault(t, d, true);
    mark_link_dead(dead_links, t, mesh.neighbor(t, d));
  };
  kill_link(mesh.tile_id({2, 1}), Direction::East);
  kill_link(mesh.tile_id({5, 3}), Direction::North);
  kill_link(mesh.tile_id({7, 0}), Direction::West);
  const TileId dead_router = mesh.tile_id({4, 4});
  net.set_router_fault(dead_router, true);
  for (const Direction d : kCardinalDirections) {
    const TileId n = mesh.neighbor(dead_router, d);
    if (n != kInvalidTile) mark_link_dead(dead_links, dead_router, n);
  }
  ASSERT_TRUE(net.fault_mode());

  net.enable_tracing(true);
  net.set_trace_capacity(4096);
  Rng rng(2024);
  std::vector<std::pair<TileId, TileId>> pairs;
  for (int i = 0; i < 400; ++i) {
    TileId s = static_cast<TileId>(rng.next_below(
        static_cast<std::uint64_t>(mesh.tile_count())));
    while (s == dead_router) {
      s = static_cast<TileId>(rng.next_below(
          static_cast<std::uint64_t>(mesh.tile_count())));
    }
    TileId d = s;
    while (d == s) {
      d = static_cast<TileId>(rng.next_below(
          static_cast<std::uint64_t>(mesh.tile_count())));
    }
    net.inject_packet(s, d, 0);
    pairs.push_back({s, d});
    net.step();
  }
  for (int i = 0; i < 60000 && net.in_flight_flits() > 0; ++i) net.step();
  ASSERT_EQ(net.in_flight_flits(), 0u);
  EXPECT_EQ(net.total_delivered_flits() + net.fault_dropped_flits(),
            net.total_injected_flits());

  int checked = 0;
  for (std::int64_t id = 0; id < static_cast<std::int64_t>(pairs.size());
       ++id) {
    const std::vector<TileId> route = net.traced_route(id);
    if (route.empty()) continue;
    ++checked;
    for (std::size_t h = 0; h + 1 < route.size(); ++h) {
      EXPECT_FALSE(dead_links.count({route[h], route[h + 1]}))
          << "packet " << id << " crossed dead link " << route[h] << "->"
          << route[h + 1];
    }
    for (std::size_t h = 0; h + 1 < route.size(); ++h) {
      EXPECT_NE(route[h + 1], dead_router)
          << "packet " << id << " entered the dead router";
    }
  }
  EXPECT_GT(checked, 300);  // tracing actually observed the traffic
}

TEST(FaultRoutingProperty, NoDeadlockUnderAnySingleLinkFailureOn10x6) {
  // Exhaustive single-fault sweep: for EVERY mesh link, fail it, push
  // uniform random traffic, stop injecting, and require the network to
  // drain completely — the deadlock-freedom claim of the degraded
  // spanning-tree router, link by link.
  const MeshGeometry mesh(10, 6);
  int links_checked = 0;
  for (TileId t = 0; t < mesh.tile_count(); ++t) {
    for (const Direction d : {Direction::East, Direction::North}) {
      if (mesh.neighbor(t, d) == kInvalidTile) continue;
      ++links_checked;
      noc::NocConfig cfg;
      cfg.buffer_depth = 2;
      noc::Network net(mesh, cfg, noc::make_routing("XY"));
      net.set_link_fault(t, d, true);

      Rng rng(1000 + static_cast<std::uint64_t>(t) * 4 +
              static_cast<std::uint64_t>(d));
      const auto flows = noc::uniform_random_flows(mesh, 0.08, rng);
      noc::TrafficGenerator gen(flows);
      for (int i = 0; i < 400; ++i) {
        gen.tick(net);
        net.step();
      }
      for (int i = 0; i < 40000 && net.in_flight_flits() > 0; ++i) {
        net.step();
      }
      ASSERT_EQ(net.in_flight_flits(), 0u)
          << "deadlock with dead link at tile " << t << " dir "
          << static_cast<int>(d);
      ASSERT_EQ(net.total_delivered_flits() + net.fault_dropped_flits(),
                net.total_injected_flits())
          << "flit leak with dead link at tile " << t;
    }
  }
  EXPECT_EQ(links_checked, 9 * 6 + 10 * 5);  // 104 links on 10x6
}

}  // namespace
}  // namespace parm
