// Determinism of the parallel PSN evaluation path: running the full-system
// simulator with per-domain PSN estimates fanned out on the shared thread
// pool must produce bit-identical results to the strictly serial path
// (workers write per-domain slots; all floating-point reduction happens
// serially in domain order).
#include <gtest/gtest.h>

#include "exp/experiments.hpp"
#include "sim/system_sim.hpp"

namespace parm::sim {
namespace {

appmodel::SequenceConfig small_sequence(appmodel::SequenceKind kind,
                                        int count, double arrival,
                                        std::uint64_t seed) {
  appmodel::SequenceConfig cfg;
  cfg.kind = kind;
  cfg.app_count = count;
  cfg.inter_arrival_s = arrival;
  cfg.seed = seed;
  return cfg;
}

SimConfig fast_sim(bool parallel_psn) {
  SimConfig cfg = exp::default_sim_config();
  cfg.framework.mapping = "PARM";
  cfg.framework.routing = "PANR";
  cfg.max_sim_time_s = 20.0;
  cfg.parallel_psn = parallel_psn;
  return cfg;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.peak_psn_percent, b.peak_psn_percent);
  EXPECT_DOUBLE_EQ(a.avg_psn_percent, b.avg_psn_percent);
  EXPECT_DOUBLE_EQ(a.peak_chip_power_w, b.peak_chip_power_w);
  EXPECT_DOUBLE_EQ(a.avg_chip_power_w, b.avg_chip_power_w);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.total_ve_count, b.total_ve_count);
  EXPECT_EQ(a.completed_count, b.completed_count);
  EXPECT_EQ(a.dropped_count, b.dropped_count);
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].completed, b.apps[i].completed);
    EXPECT_DOUBLE_EQ(a.apps[i].finish_s, b.apps[i].finish_s);
    EXPECT_DOUBLE_EQ(a.apps[i].vdd, b.apps[i].vdd);
    EXPECT_EQ(a.apps[i].dop, b.apps[i].dop);
    EXPECT_EQ(a.apps[i].ve_count, b.apps[i].ve_count);
  }
}

TEST(ParallelPsn, MixedWorkloadMatchesSerialBitForBit) {
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Mixed, 5, 0.1, 17));
  SystemSimulator parallel(fast_sim(true), seq);
  SystemSimulator serial(fast_sim(false), seq);
  expect_identical(parallel.run(), serial.run());
}

TEST(ParallelPsn, CommHeavyWorkloadMatchesSerialBitForBit) {
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Communication, 4, 0.15, 91));
  SystemSimulator parallel(fast_sim(true), seq);
  SystemSimulator serial(fast_sim(false), seq);
  expect_identical(parallel.run(), serial.run());
}

TEST(ParallelPsn, ParallelRunIsRepeatable) {
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Compute, 4, 0.2, 3));
  SystemSimulator a(fast_sim(true), seq);
  SystemSimulator b(fast_sim(true), seq);
  expect_identical(a.run(), b.run());
}

}  // namespace
}  // namespace parm::sim
