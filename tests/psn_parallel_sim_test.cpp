// Determinism of the parallel PSN evaluation path: running the full-system
// simulator with per-domain PSN estimates fanned out on the shared thread
// pool must produce bit-identical results to the strictly serial path
// (workers write per-domain slots; all floating-point reduction happens
// serially in domain order).
#include <gtest/gtest.h>

#include "exp/experiments.hpp"
#include "sim/system_sim.hpp"
#include "sim_result_compare.hpp"

namespace parm::sim {
namespace {

appmodel::SequenceConfig small_sequence(appmodel::SequenceKind kind,
                                        int count, double arrival,
                                        std::uint64_t seed) {
  appmodel::SequenceConfig cfg;
  cfg.kind = kind;
  cfg.app_count = count;
  cfg.inter_arrival_s = arrival;
  cfg.seed = seed;
  return cfg;
}

SimConfig fast_sim(bool parallel_psn) {
  SimConfig cfg = exp::default_sim_config();
  cfg.framework.mapping = "PARM";
  cfg.framework.routing = "PANR";
  cfg.max_sim_time_s = 20.0;
  cfg.parallel_psn = parallel_psn;
  return cfg;
}

// expect_identical comes from sim_result_compare.hpp: every double is
// compared as its IEEE-754 bit pattern (stricter than EXPECT_DOUBLE_EQ's
// 4-ULP tolerance), and per-app outcomes and telemetry rows are included.

TEST(ParallelPsn, MixedWorkloadMatchesSerialBitForBit) {
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Mixed, 5, 0.1, 17));
  SystemSimulator parallel(fast_sim(true), seq);
  SystemSimulator serial(fast_sim(false), seq);
  expect_identical(parallel.run(), serial.run());
}

TEST(ParallelPsn, CommHeavyWorkloadMatchesSerialBitForBit) {
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Communication, 4, 0.15, 91));
  SystemSimulator parallel(fast_sim(true), seq);
  SystemSimulator serial(fast_sim(false), seq);
  expect_identical(parallel.run(), serial.run());
}

TEST(ParallelPsn, ParallelRunIsRepeatable) {
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Compute, 4, 0.2, 3));
  SystemSimulator a(fast_sim(true), seq);
  SystemSimulator b(fast_sim(true), seq);
  expect_identical(a.run(), b.run());
}

}  // namespace
}  // namespace parm::sim
