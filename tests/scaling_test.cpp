// Portability of the stack beyond the paper's 10×6 CMP: alternative mesh
// geometries end to end, router arbitration fairness, and NoC state
// persistence across measurement windows.
#include <gtest/gtest.h>

#include "core/admission.hpp"
#include "exp/experiments.hpp"
#include "noc/traffic.hpp"
#include "noc/window_sim.hpp"
#include "sim/system_sim.hpp"

namespace parm {
namespace {

TEST(Scaling, AdmissionWorksOnLargerAndSmallerMeshes) {
  for (const auto& [w, h] : {std::pair{4, 4}, std::pair{8, 8},
                             std::pair{16, 6}}) {
    cmp::PlatformConfig cfg;
    cfg.mesh_width = w;
    cfg.mesh_height = h;
    cfg.dark_silicon_budget_w = 65.0 * w * h / 60.0;
    cmp::Platform platform{cfg};
    core::ParmAdmissionPolicy policy;

    appmodel::AppArrival app;
    app.id = 0;
    app.bench = &appmodel::benchmark_by_name("radix");  // max_dop = 16
    app.profile =
        std::make_shared<appmodel::ApplicationProfile>(*app.bench, 3);
    app.arrival_s = 0.0;
    app.deadline_s = 100.0;

    const auto r = policy.try_admit(app, 0.0, platform);
    ASSERT_TRUE(r.admitted()) << w << "x" << h;
    // The chosen DoP fits the platform's domain count.
    EXPECT_LE(r.decision->dop / 4, platform.mesh().domain_count());
    EXPECT_TRUE(mapping::validate_mapping(
        platform, app.profile->variant(r.decision->dop),
        r.decision->mapping));
  }
}

TEST(Scaling, FullSimulationOnAn8x8Cmp) {
  sim::SimConfig cfg = exp::default_sim_config();
  cfg.platform.mesh_width = 8;
  cfg.platform.mesh_height = 8;
  cfg.platform.dark_silicon_budget_w = 70.0;
  cfg.framework.mapping = "PARM";
  cfg.framework.routing = "PANR";

  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Mixed;
  seq.app_count = 5;
  seq.inter_arrival_s = 0.1;
  seq.seed = 77;

  sim::SystemSimulator sim(cfg, appmodel::make_sequence(seq));
  const sim::SimResult r = sim.run();
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.completed_count + r.dropped_count, 5);
  EXPECT_GE(r.completed_count, 4);
  EXPECT_EQ(sim.platform().free_tile_count(), 64);
}

TEST(Arbitration, OutputPortSharesBandwidthFairly) {
  // Two steady flows from opposite sides merging into one ejection port:
  // round-robin arbitration must deliver both within a reasonable factor
  // of each other.
  const MeshGeometry mesh(6, 4);
  noc::NocConfig cfg;
  cfg.buffer_depth = 4;
  noc::Network net(mesh, cfg, std::make_unique<noc::XyRouting>());
  const TileId sink = mesh.tile_id({3, 1});
  noc::TrafficGenerator gen({{mesh.tile_id({0, 1}), sink, 0.45, 1},
                             {mesh.tile_id({5, 1}), sink, 0.45, 2}});
  for (int i = 0; i < 4000; ++i) {
    gen.tick(net);
    net.step();
  }
  const auto& a = net.app_stats().at(1);
  const auto& b = net.app_stats().at(2);
  ASSERT_GT(a.packets_delivered, 100u);
  ASSERT_GT(b.packets_delivered, 100u);
  const double ratio = static_cast<double>(a.packets_delivered) /
                       static_cast<double>(b.packets_delivered);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST(WindowSim, StatePersistsAcrossWindows) {
  // A congested network must stay congested into the next window (the
  // system simulator relies on this when it re-samples every epoch).
  const MeshGeometry mesh(6, 4);
  noc::NocConfig cfg;
  cfg.buffer_depth = 4;
  noc::Network net(mesh, cfg, std::make_unique<noc::XyRouting>());
  noc::TrafficGenerator heavy(noc::hotspot_flows(mesh, 9, 0.1));
  const noc::WindowConfig wcfg{128, 512};
  const auto w1 = noc::run_window(net, heavy, wcfg);
  const auto w2 = noc::run_window(net, heavy, wcfg);
  // Second window starts warm: latency at least as high as the first's.
  EXPECT_GE(w2.avg_latency, w1.avg_latency * 0.8);
  EXPECT_GT(net.cycle(), 2 * (wcfg.warmup_cycles + wcfg.measure_cycles) - 1);
}

}  // namespace
}  // namespace parm
