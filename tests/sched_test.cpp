// Unit tests for parm_sched: EDF queue semantics, task-deadline
// distribution over the APG, and the checkpoint/rollback cost model.
#include <gtest/gtest.h>

#include <algorithm>

#include "appmodel/application.hpp"
#include "common/check.hpp"
#include "sched/checkpoint.hpp"
#include "sched/edf.hpp"

namespace parm::sched {
namespace {

// -------------------------------------------------------------------- EDF

TEST(EdfQueue, PopsEarliestDeadline) {
  EdfQueue q;
  q.push(1, 5.0);
  q.push(2, 1.0);
  q.push(3, 3.0);
  EXPECT_EQ(q.pop().id, 2);
  EXPECT_EQ(q.pop().id, 3);
  EXPECT_EQ(q.pop().id, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EdfQueue, StableAmongEqualDeadlines) {
  EdfQueue q;
  q.push(10, 2.0);
  q.push(11, 2.0);
  q.push(12, 2.0);
  EXPECT_EQ(q.pop().id, 10);
  EXPECT_EQ(q.pop().id, 11);
  EXPECT_EQ(q.pop().id, 12);
}

TEST(EdfQueue, PeekDoesNotRemove) {
  EdfQueue q;
  q.push(1, 1.0);
  EXPECT_EQ(q.peek().id, 1);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EdfQueue, EmptyAccessThrows) {
  EdfQueue q;
  EXPECT_THROW(q.pop(), CheckError);
  EXPECT_THROW(q.peek(), CheckError);
}

TEST(EdfQueue, InterleavedOperations) {
  EdfQueue q;
  q.push(1, 9.0);
  q.push(2, 4.0);
  EXPECT_EQ(q.pop().id, 2);
  q.push(3, 1.0);
  q.push(4, 20.0);
  EXPECT_EQ(q.pop().id, 3);
  EXPECT_EQ(q.pop().id, 1);
  EXPECT_EQ(q.pop().id, 4);
}

// ----------------------------------------------------- deadline assignment

appmodel::DopVariant chain_variant() {
  // 0 → 1 → 2 → 3 with equal work: deadlines must grow linearly.
  appmodel::DopVariant v;
  v.dop = 4;
  v.tasks.resize(4);
  for (auto& t : v.tasks) {
    t.work_cycles = 1e6;
    t.activity = 0.5;
  }
  v.graph = appmodel::TaskGraph(
      4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  return v;
}

TEST(DeadlineAssignment, ChainIsLinearAndEndsAtAppDeadline) {
  const auto v = chain_variant();
  const auto d = assign_task_deadlines(v, 1.0, 5.0);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_NEAR(d[0], 2.0, 1e-9);  // 1/4 of the span after start
  EXPECT_NEAR(d[1], 3.0, 1e-9);
  EXPECT_NEAR(d[2], 4.0, 1e-9);
  EXPECT_NEAR(d[3], 5.0, 1e-9);
}

TEST(DeadlineAssignment, MonotoneAlongEveryEdge) {
  appmodel::ApplicationProfile profile(
      appmodel::benchmark_by_name("cholesky"), 4);
  for (int dop : {8, 16}) {
    const auto& v = profile.variant(dop);
    const auto d = assign_task_deadlines(v, 0.0, 1.0);
    for (const auto& e : v.graph.edges()) {
      EXPECT_LE(d[static_cast<std::size_t>(e.src)],
                d[static_cast<std::size_t>(e.dst)] + 1e-12);
    }
    for (double x : d) {
      EXPECT_GT(x, 0.0);
      EXPECT_LE(x, 1.0 + 1e-12);
    }
    EXPECT_NEAR(*std::max_element(d.begin(), d.end()), 1.0, 1e-9);
  }
}

TEST(DeadlineAssignment, InvalidSpanThrows) {
  const auto v = chain_variant();
  EXPECT_THROW(assign_task_deadlines(v, 2.0, 1.0), CheckError);
}

// ------------------------------------------------------------- checkpoint

TEST(Checkpoint, PaperDefaults) {
  const CheckpointModel m;
  EXPECT_DOUBLE_EQ(m.config().period_s, 1e-3);
  EXPECT_DOUBLE_EQ(m.config().checkpoint_cycles, 256.0);
  EXPECT_DOUBLE_EQ(m.config().rollback_cycles, 10000.0);
}

TEST(Checkpoint, OverheadFractionAt1GHz) {
  const CheckpointModel m;
  // 256 cycles per 1 ms at 1 GHz = 256 / 1e6.
  EXPECT_NEAR(m.overhead_fraction(1e9), 2.56e-4, 1e-12);
  // Faster clock → relatively cheaper checkpoints.
  EXPECT_LT(m.overhead_fraction(2e9), m.overhead_fraction(1e9));
}

TEST(Checkpoint, RollbackCostCombinesLostWorkAndRestart) {
  const CheckpointModel m;
  // 0.5 ms since checkpoint at 1e9 useful cycles/s → 5e5 lost + 1e4.
  EXPECT_NEAR(m.rollback_cost_cycles(0.5e-3, 1e9), 5.1e5, 1.0);
  EXPECT_NEAR(m.rollback_cost_cycles(0.0, 1e9), 1e4, 1e-9);
}

TEST(Checkpoint, LastCheckpointTime) {
  const CheckpointModel m;
  EXPECT_NEAR(m.last_checkpoint_time(0.0, 3.4e-3), 3e-3, 1e-12);
  EXPECT_NEAR(m.last_checkpoint_time(0.2e-3, 3.4e-3), 3.2e-3, 1e-12);
  EXPECT_THROW(m.last_checkpoint_time(1.0, 0.5), CheckError);
}

TEST(Checkpoint, ConfigValidation) {
  CheckpointConfig bad;
  bad.period_s = 0.0;
  EXPECT_THROW(CheckpointModel{bad}, CheckError);
}

}  // namespace
}  // namespace parm::sched
