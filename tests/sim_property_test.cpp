// Parameterized integration sweep: every framework × workload kind must
// satisfy the simulator's global invariants on a moderate scenario.
#include <gtest/gtest.h>

#include <tuple>

#include "exp/experiments.hpp"
#include "sim/system_sim.hpp"

namespace parm::sim {
namespace {

using Case = std::tuple<const char* /*mapping*/, const char* /*routing*/,
                        const char* /*workload*/>;

class FrameworkWorkloadSweep : public ::testing::TestWithParam<Case> {};

TEST_P(FrameworkWorkloadSweep, GlobalInvariantsHold) {
  const auto [mapping, routing, workload] = GetParam();

  appmodel::SequenceConfig seq;
  seq.kind = std::string(workload) == "compute"
                 ? appmodel::SequenceKind::Compute
             : std::string(workload) == "comm"
                 ? appmodel::SequenceKind::Communication
                 : appmodel::SequenceKind::Mixed;
  seq.app_count = 8;
  seq.inter_arrival_s = 0.08;
  seq.seed = 19;

  SimConfig cfg = exp::default_sim_config();
  cfg.framework.mapping = mapping;
  cfg.framework.routing = routing;
  cfg.record_telemetry = true;

  SystemSimulator sim(cfg, appmodel::make_sequence(seq));
  const SimResult r = sim.run();

  // 1. No lost applications: every arrival resolves.
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.completed_count + r.dropped_count, 8);

  // 2. Resources fully returned.
  EXPECT_EQ(sim.platform().free_tile_count(), 60);
  EXPECT_NEAR(sim.platform().ledger().reserved(), 0.0, 1e-9);

  // 3. Outcome consistency.
  for (const auto& o : r.apps) {
    if (o.completed) {
      EXPECT_TRUE(o.admitted);
      EXPECT_GE(o.finish_s, o.admit_s);
      EXPECT_GT(o.dop, 0);
      EXPECT_EQ(o.dop % 4, 0);  // whole power domains
      EXPECT_GE(o.vdd, 0.4);
      EXPECT_LE(o.vdd, 0.8);
      EXPECT_GE(o.task_deadline_misses, 0);
      EXPECT_LE(o.task_deadline_misses, o.dop);
    }
    EXPECT_FALSE(o.completed && o.dropped);
  }

  // 4. Physical sanity: PSN non-negative and bounded; power under a
  //    loose multiple of the budget; telemetry covers the whole run.
  EXPECT_GE(r.peak_psn_percent, 0.0);
  EXPECT_LT(r.peak_psn_percent, 40.0);
  EXPECT_GE(r.peak_psn_percent, r.avg_psn_percent);
  EXPECT_LT(r.peak_chip_power_w, 65.0 * 1.2);
  EXPECT_FALSE(r.telemetry.empty());
  EXPECT_NEAR(r.telemetry.samples().back().time_s, r.makespan_s,
              50 * cfg.epoch_s);

  // 5. Determinism: a second identical run agrees exactly.
  SystemSimulator again(cfg, appmodel::make_sequence(seq));
  const SimResult r2 = again.run();
  EXPECT_DOUBLE_EQ(r2.makespan_s, r.makespan_s);
  EXPECT_EQ(r2.total_ve_count, r.total_ve_count);
  EXPECT_EQ(r2.completed_count, r.completed_count);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FrameworkWorkloadSweep,
    ::testing::Combine(::testing::Values("HM", "PARM"),
                       ::testing::Values("XY", "ICON", "PANR"),
                       ::testing::Values("compute", "comm", "mixed")),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return std::string(std::get<0>(param_info.param)) + "_" +
             std::get<1>(param_info.param) + "_" +
             std::get<2>(param_info.param);
    });

}  // namespace
}  // namespace parm::sim
