// Bit-exact SimResult comparison shared by the determinism test suites
// (snapshot/resume replay equivalence, parallel-vs-serial PSN, repeated
// same-seed runs). Doubles are compared as IEEE-754 bit patterns: the
// simulator's determinism guarantees are bit-for-bit, so nothing weaker
// than exact equality is accepted.
#pragma once

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "sim/system_sim.hpp"

namespace parm::sim {

inline void expect_bits(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

inline void expect_identical_outcomes(const AppOutcome& a,
                                      const AppOutcome& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.bench, b.bench);
  expect_bits(a.arrival_s, b.arrival_s, "arrival_s");
  expect_bits(a.deadline_s, b.deadline_s, "deadline_s");
  EXPECT_EQ(a.admitted, b.admitted) << "app " << a.id;
  EXPECT_EQ(a.completed, b.completed) << "app " << a.id;
  EXPECT_EQ(a.dropped, b.dropped) << "app " << a.id;
  expect_bits(a.admit_s, b.admit_s, "admit_s");
  expect_bits(a.finish_s, b.finish_s, "finish_s");
  EXPECT_EQ(a.missed_deadline, b.missed_deadline) << "app " << a.id;
  EXPECT_EQ(a.task_deadline_misses, b.task_deadline_misses)
      << "app " << a.id;
  expect_bits(a.vdd, b.vdd, "vdd");
  EXPECT_EQ(a.dop, b.dop) << "app " << a.id;
  EXPECT_EQ(a.ve_count, b.ve_count) << "app " << a.id;
}

inline void expect_identical_telemetry(const TelemetryRecorder& a,
                                       const TelemetryRecorder& b) {
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    SCOPED_TRACE("telemetry epoch " + std::to_string(i));
    const EpochSample& x = a.samples()[i];
    const EpochSample& y = b.samples()[i];
    expect_bits(x.time_s, y.time_s, "time_s");
    expect_bits(x.peak_psn_percent, y.peak_psn_percent, "peak_psn_percent");
    expect_bits(x.avg_psn_percent, y.avg_psn_percent, "avg_psn_percent");
    expect_bits(x.chip_power_w, y.chip_power_w, "chip_power_w");
    EXPECT_EQ(x.running_apps, y.running_apps);
    EXPECT_EQ(x.queued_apps, y.queued_apps);
    EXPECT_EQ(x.busy_tiles, y.busy_tiles);
    expect_bits(x.noc_latency_cycles, y.noc_latency_cycles,
                "noc_latency_cycles");
    EXPECT_EQ(x.ve_count, y.ve_count);
    EXPECT_EQ(x.pdn_solves, y.pdn_solves);
    EXPECT_EQ(x.mapper_candidates, y.mapper_candidates);
    EXPECT_EQ(x.panr_reroutes, y.panr_reroutes);
  }
}

inline void expect_identical(const SimResult& a, const SimResult& b) {
  expect_bits(a.makespan_s, b.makespan_s, "makespan_s");
  expect_bits(a.peak_psn_percent, b.peak_psn_percent, "peak_psn_percent");
  expect_bits(a.avg_psn_percent, b.avg_psn_percent, "avg_psn_percent");
  EXPECT_EQ(a.completed_count, b.completed_count);
  EXPECT_EQ(a.dropped_count, b.dropped_count);
  EXPECT_EQ(a.total_ve_count, b.total_ve_count);
  EXPECT_EQ(a.throttle_tile_epochs, b.throttle_tile_epochs);
  EXPECT_EQ(a.migration_count, b.migration_count);
  expect_bits(a.avg_noc_latency_cycles, b.avg_noc_latency_cycles,
              "avg_noc_latency_cycles");
  expect_bits(a.peak_chip_power_w, b.peak_chip_power_w,
              "peak_chip_power_w");
  expect_bits(a.avg_chip_power_w, b.avg_chip_power_w, "avg_chip_power_w");
  expect_bits(a.total_energy_j, b.total_energy_j, "total_energy_j");
  expect_bits(a.energy_per_completed_app_j, b.energy_per_completed_app_j,
              "energy_per_completed_app_j");
  EXPECT_EQ(a.timed_out, b.timed_out);
  expect_bits(a.avg_delivery_ratio, b.avg_delivery_ratio,
              "avg_delivery_ratio");
  expect_bits(a.min_delivery_ratio, b.min_delivery_ratio,
              "min_delivery_ratio");
  EXPECT_EQ(a.deadlock_windows, b.deadlock_windows);
  EXPECT_EQ(a.fault_dropped_flits, b.fault_dropped_flits);
  EXPECT_EQ(a.corrupt_packets, b.corrupt_packets);
  EXPECT_EQ(a.retransmitted_packets, b.retransmitted_packets);
  EXPECT_EQ(a.link_fault_events, b.link_fault_events);
  EXPECT_EQ(a.router_fault_events, b.router_fault_events);
  EXPECT_EQ(a.sensor_dropout_epochs, b.sensor_dropout_epochs);
  EXPECT_EQ(a.fault_task_remaps, b.fault_task_remaps);
  EXPECT_EQ(a.fault_stranded_tasks, b.fault_stranded_tasks);
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    SCOPED_TRACE("app " + std::to_string(i));
    expect_identical_outcomes(a.apps[i], b.apps[i]);
  }
  expect_identical_telemetry(a.telemetry, b.telemetry);
}

}  // namespace parm::sim
