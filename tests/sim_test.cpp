// Integration tests for the full-system simulator: end-to-end execution,
// determinism, accounting invariants, and the paper's headline orderings
// on small workloads.
#include <gtest/gtest.h>

#include "exp/experiments.hpp"
#include "sim/system_sim.hpp"

namespace parm::sim {
namespace {

appmodel::SequenceConfig small_sequence(appmodel::SequenceKind kind,
                                        int count, double arrival,
                                        std::uint64_t seed) {
  appmodel::SequenceConfig cfg;
  cfg.kind = kind;
  cfg.app_count = count;
  cfg.inter_arrival_s = arrival;
  cfg.seed = seed;
  return cfg;
}

SimConfig fast_sim(const core::FrameworkConfig& fw) {
  SimConfig cfg = exp::default_sim_config();
  cfg.framework = fw;
  cfg.max_sim_time_s = 20.0;
  return cfg;
}

core::FrameworkConfig fw(const char* mapping, const char* routing) {
  core::FrameworkConfig cfg;
  cfg.mapping = mapping;
  cfg.routing = routing;
  return cfg;
}

TEST(SystemSim, SmallSequenceRunsToCompletion) {
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Compute, 4, 0.2, 3));
  SystemSimulator sim(fast_sim(fw("PARM", "PANR")), seq);
  const SimResult r = sim.run();
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.completed_count + r.dropped_count, 4);
  EXPECT_EQ(r.completed_count, 4);  // light load: everything completes
  EXPECT_GT(r.makespan_s, 0.6);     // at least the arrival span
  for (const auto& o : r.apps) {
    EXPECT_TRUE(o.admitted);
    EXPECT_TRUE(o.completed);
    EXPECT_GT(o.finish_s, o.arrival_s);
    EXPECT_GE(o.admit_s, o.arrival_s);
    EXPECT_GT(o.dop, 0);
    EXPECT_GT(o.vdd, 0.0);
  }
}

TEST(SystemSim, DeterministicForSameConfiguration) {
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Mixed, 5, 0.1, 17));
  SystemSimulator a(fast_sim(fw("PARM", "PANR")), seq);
  SystemSimulator b(fast_sim(fw("PARM", "PANR")), seq);
  const SimResult ra = a.run();
  const SimResult rb = b.run();
  EXPECT_DOUBLE_EQ(ra.makespan_s, rb.makespan_s);
  EXPECT_DOUBLE_EQ(ra.peak_psn_percent, rb.peak_psn_percent);
  EXPECT_EQ(ra.total_ve_count, rb.total_ve_count);
  EXPECT_EQ(ra.completed_count, rb.completed_count);
}

TEST(SystemSim, NonMeshTopologyRunsAndChangesFingerprint) {
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Compute, 3, 0.2, 5));
  SimConfig mesh_cfg = fast_sim(fw("PARM", "PANR"));
  SimConfig torus_cfg = mesh_cfg;
  torus_cfg.platform.topology = "torus";
  SystemSimulator on_mesh(mesh_cfg, seq);
  SystemSimulator on_torus(torus_cfg, seq);
  // The topology is part of the snapshot fingerprint (a torus snapshot
  // must not restore into a mesh run), but the default "mesh" hashes
  // like pre-topology builds so old snapshots stay loadable.
  EXPECT_NE(on_mesh.config_fingerprint(), on_torus.config_fingerprint());
  const SimResult r = on_torus.run();
  EXPECT_EQ(r.completed_count, 3);
}

TEST(SystemSim, InvalidTopologySpecRejectedAtValidation) {
  SimConfig cfg = fast_sim(fw("PARM", "PANR"));
  cfg.platform.topology = "moebius";
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(SystemSim, EveryAppAccountedExactlyOnce) {
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Communication, 8, 0.05, 29));
  SystemSimulator sim(fast_sim(fw("HM", "XY")), seq);
  const SimResult r = sim.run();
  ASSERT_EQ(r.apps.size(), 8u);
  for (const auto& o : r.apps) {
    // An app is exactly one of: completed, dropped, or cut off by the
    // simulation horizon (only when timed_out).
    const int states = int(o.completed) + int(o.dropped);
    if (r.timed_out) {
      EXPECT_LE(states, 1);
    } else {
      EXPECT_EQ(states, 1);
    }
    // (braced branches above silence -Wdangling-else from EXPECT macros)
    EXPECT_FALSE(o.completed && o.dropped);
    if (o.completed) EXPECT_TRUE(o.admitted);
  }
}

TEST(SystemSim, PlatformFullyReleasedAfterRun) {
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Compute, 4, 0.1, 5));
  SystemSimulator sim(fast_sim(fw("PARM", "XY")), seq);
  const SimResult r = sim.run();
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(sim.platform().free_tile_count(),
            sim.platform().mesh().tile_count());
  EXPECT_NEAR(sim.platform().ledger().reserved(), 0.0, 1e-9);
}

TEST(SystemSim, PowerStaysWithinDarkSiliconBudget) {
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Compute, 10, 0.05, 13));
  for (const char* mapping : {"HM", "PARM"}) {
    SystemSimulator sim(fast_sim(fw(mapping, "XY")), seq);
    const SimResult r = sim.run();
    // Reserved estimates respect the budget; the physical peak may exceed
    // the estimate slightly (routing detours), but not wildly.
    EXPECT_LT(r.peak_chip_power_w, 65.0 * 1.15) << mapping;
  }
}

TEST(SystemSim, ParmSelectsLowerVddThanHm) {
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Compute, 6, 0.1, 21));
  SystemSimulator parm(fast_sim(fw("PARM", "XY")), seq);
  SystemSimulator hm(fast_sim(fw("HM", "XY")), seq);
  const SimResult rp = parm.run();
  const SimResult rh = hm.run();
  double parm_max_vdd = 0.0, hm_min_vdd = 1.0;
  for (const auto& o : rp.apps) {
    if (o.admitted) parm_max_vdd = std::max(parm_max_vdd, o.vdd);
  }
  for (const auto& o : rh.apps) {
    if (o.admitted) hm_min_vdd = std::min(hm_min_vdd, o.vdd);
  }
  EXPECT_LT(parm_max_vdd, hm_min_vdd);
}

TEST(SystemSim, ParmKeepsPsnFarBelowHm) {
  // The paper's headline (Fig. 7): PARM's PSN is a small fraction of HM's.
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Compute, 8, 0.1, 37));
  SystemSimulator parm(fast_sim(fw("PARM", "PANR")), seq);
  SystemSimulator hm(fast_sim(fw("HM", "XY")), seq);
  const SimResult rp = parm.run();
  const SimResult rh = hm.run();
  EXPECT_LT(rp.peak_psn_percent * 1.5, rh.peak_psn_percent);
  EXPECT_LT(rp.avg_psn_percent, rh.avg_psn_percent);
  EXPECT_LT(rp.total_ve_count * 10, rh.total_ve_count + 10);
}

TEST(SystemSim, OversubscriptionCausesDropsForHm) {
  // At a 0.05 s arrival rate HM's fixed operating point cannot keep up.
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Compute, 16, 0.05, 41));
  SystemSimulator hm(fast_sim(fw("HM", "XY")), seq);
  SystemSimulator parm(fast_sim(fw("PARM", "PANR")), seq);
  const SimResult rh = hm.run();
  const SimResult rp = parm.run();
  EXPECT_GT(rh.dropped_count, 0);
  EXPECT_GE(rp.completed_count, rh.completed_count);
}

TEST(SystemSim, TimeoutReportedWhenHorizonTooShort) {
  const auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Compute, 6, 0.05, 9));
  SimConfig cfg = fast_sim(fw("PARM", "XY"));
  cfg.max_sim_time_s = 0.05;  // far too short
  SystemSimulator sim(cfg, seq);
  const SimResult r = sim.run();
  EXPECT_TRUE(r.timed_out);
}

TEST(SystemSim, RejectsUnsortedArrivals) {
  auto seq = appmodel::make_sequence(
      small_sequence(appmodel::SequenceKind::Compute, 3, 0.1, 2));
  std::swap(seq[0], seq[2]);
  EXPECT_THROW(SystemSimulator(fast_sim(fw("PARM", "XY")), seq),
               CheckError);
}

TEST(Experiments, MatrixRunsAllFrameworksOnSameSequence) {
  appmodel::SequenceConfig seq =
      small_sequence(appmodel::SequenceKind::Mixed, 3, 0.2, 55);
  const auto runs = exp::run_framework_matrix(core::paper_frameworks(), seq,
                                              exp::default_sim_config());
  ASSERT_EQ(runs.size(), 6u);
  EXPECT_EQ(runs[0].framework, "HM+XY");
  EXPECT_EQ(runs[5].framework, "PARM+PANR");
  for (const auto& run : runs) {
    EXPECT_EQ(run.result.apps.size(), 3u);
    // Same sequence across frameworks: identical arrivals/deadlines.
    EXPECT_DOUBLE_EQ(run.result.apps[1].arrival_s, 0.2);
    EXPECT_DOUBLE_EQ(run.result.apps[1].deadline_s,
                     runs[0].result.apps[1].deadline_s);
  }
}

TEST(Experiments, Fig8FrameworkList) {
  const auto fws = exp::fig8_frameworks();
  ASSERT_EQ(fws.size(), 4u);
  EXPECT_EQ(fws[0].display_name(), "HM+XY");
  EXPECT_EQ(fws[1].display_name(), "PARM+XY");
  EXPECT_EQ(fws[2].display_name(), "PARM+ICON");
  EXPECT_EQ(fws[3].display_name(), "PARM+PANR");
}

}  // namespace
}  // namespace parm::sim
