// Rolling SLO engine + health-rule boundary tests.
//
// Pins the burn-rate math (windowed deltas over cumulative counters,
// windowed admit p99, multi-window alert gating), the fleet merge
// (raw sums added, never averaged averages), and the HealthMonitor rule
// edges: the >= comparison means a value exactly at a threshold fires,
// and an empty registry reports "no data" everywhere instead of
// dividing by zero.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"

namespace parm::obs {
namespace {

/// Finds an objective by name; fails the test when absent.
const SloObjective& objective(const SloReport& report,
                              const std::string& name) {
  for (const SloObjective& o : report.objectives) {
    if (o.name == name) return o;
  }
  ADD_FAILURE() << "objective " << name << " missing from report";
  static const SloObjective none;
  return none;
}

/// Advances the engine one epoch after bumping the cumulative counters
/// it reads.
void step_epoch(SloEngine& engine, Registry& reg, std::uint64_t ves,
                std::uint64_t misses, std::uint64_t completed,
                std::uint64_t injected, std::uint64_t delivered) {
  reg.counter("sim.ves").inc(ves);
  reg.counter("sim.deadline_misses").inc(misses);
  reg.counter("sim.apps_completed").inc(completed);
  reg.counter("noc.flits_injected").inc(injected);
  reg.counter("noc.flits_delivered").inc(delivered);
  engine.observe_epoch(reg);
}

SloConfig tight_config() {
  SloConfig cfg;
  cfg.short_window_epochs = 2;
  cfg.long_window_epochs = 5;
  cfg.ve_rate_slo = 0.5;        // budget: one VE per two epochs
  cfg.admit_p99_slo_s = 0.1;
  return cfg;
}

TEST(SloWindow, DerivedRatesAndNoDataDefaults) {
  SloWindow w;
  EXPECT_DOUBLE_EQ(w.ve_rate(), 0.0);            // no epochs -> 0
  EXPECT_DOUBLE_EQ(w.deadline_miss_rate(), 0.0); // no apps -> 0
  EXPECT_DOUBLE_EQ(w.delivery_ratio(), 1.0);     // no flits -> perfect

  w.epochs = 4;
  w.ves = 2;
  w.deadline_misses = 1;
  w.apps_completed = 4;
  w.flits_injected = 100;
  w.flits_delivered = 95;
  EXPECT_DOUBLE_EQ(w.ve_rate(), 0.5);
  EXPECT_DOUBLE_EQ(w.deadline_miss_rate(), 0.25);
  EXPECT_DOUBLE_EQ(w.delivery_ratio(), 0.95);
}

TEST(SloConfigValidate, RejectsOutOfRangeFields) {
  EXPECT_NO_THROW(SloConfig{}.validate());

  SloConfig inverted;
  inverted.short_window_epochs = 10;
  inverted.long_window_epochs = 10;  // long must exceed short
  EXPECT_THROW(inverted.validate(), CheckError);

  SloConfig zero_rate;
  zero_rate.ve_rate_slo = 0.0;
  EXPECT_THROW(zero_rate.validate(), CheckError);

  SloConfig bad_delivery;
  bad_delivery.delivery_ratio_slo = 1.0;  // loss budget would be zero
  EXPECT_THROW(bad_delivery.validate(), CheckError);

  SloConfig inverted_burn;
  inverted_burn.burn_warn = 3.0;
  inverted_burn.burn_crit = 2.0;
  EXPECT_THROW(inverted_burn.validate(), CheckError);
}

TEST(SloEngine, DisabledEngineIsInert) {
  Registry reg;
  SloEngine engine(false);
  step_epoch(engine, reg, 5, 1, 1, 10, 10);
  engine.observe_admit(1.0);
  const SloReport report = engine.report();
  EXPECT_EQ(report.long_window.epochs, 0u);
  EXPECT_EQ(report.status, HealthStatus::kOk);
}

TEST(SloEngine, WindowsHoldTrailingDeltasOfCumulativeCounters) {
  Registry reg;
  SloEngine engine(true, tight_config());
  // Seven epochs; the long window (5) must retain only the last five,
  // the short window (2) the last two — as deltas, not cumulative sums.
  for (int e = 0; e < 7; ++e) {
    step_epoch(engine, reg, /*ves=*/1, /*misses=*/0, /*completed=*/2,
               /*injected=*/10, /*delivered=*/9);
  }
  const SloReport r = engine.report();
  EXPECT_EQ(r.long_window.epochs, 5u);
  EXPECT_EQ(r.long_window.ves, 5u);
  EXPECT_EQ(r.long_window.apps_completed, 10u);
  EXPECT_EQ(r.long_window.flits_injected, 50u);
  EXPECT_EQ(r.long_window.flits_delivered, 45u);
  EXPECT_EQ(r.short_window.epochs, 2u);
  EXPECT_EQ(r.short_window.ves, 2u);
  // ve burn: rate 1.0 per epoch vs budget 0.5 -> 2.0 in both windows.
  const SloObjective& ve = objective(r, "ve_rate");
  EXPECT_DOUBLE_EQ(ve.short_burn, 2.0);
  EXPECT_DOUBLE_EQ(ve.long_burn, 2.0);
  EXPECT_EQ(ve.status, HealthStatus::kCrit);  // burn_crit default 2.0
  EXPECT_EQ(r.status, HealthStatus::kCrit);
}

TEST(SloEngine, OneEpochSpikeDoesNotAlert) {
  Registry reg;
  SloEngine engine(true, tight_config());
  // Four quiet epochs, then one catastrophic epoch: the short window
  // burns hot but the long window stays under the warn threshold, and
  // the multi-window rule (BOTH must burn) keeps the alert quiet.
  for (int e = 0; e < 4; ++e) step_epoch(engine, reg, 0, 0, 1, 10, 10);
  step_epoch(engine, reg, /*ves=*/2, 0, 1, 10, 10);
  const SloReport r = engine.report();
  const SloObjective& ve = objective(r, "ve_rate");
  EXPECT_GE(ve.short_burn, 2.0);  // 1 VE/epoch over budget 0.5
  EXPECT_LT(ve.long_burn, 1.0);   // 2 VEs over 5 epochs = burn 0.8
  EXPECT_EQ(ve.status, HealthStatus::kOk);
  EXPECT_EQ(r.status, HealthStatus::kOk);
}

TEST(SloEngine, SustainedBurnBetweenWarnAndCritIsWarn) {
  Registry reg;
  SloConfig cfg = tight_config();
  SloEngine engine(true, cfg);
  // VEs 1,1,1,0,1 against a 0.5/epoch budget: long window burns 1.6
  // (4 VEs over 5 epochs), short window burns exactly 1.0 (1 VE over
  // the last 2 epochs) — both at or above warn, under crit.
  const std::uint64_t ves_per_epoch[] = {1, 1, 1, 0, 1};
  for (std::uint64_t ves : ves_per_epoch) {
    step_epoch(engine, reg, ves, 0, 1, 10, 10);
  }
  const SloReport r = engine.report();
  const SloObjective& ve = objective(r, "ve_rate");
  EXPECT_GE(ve.short_burn, 1.0);
  EXPECT_GE(ve.long_burn, 1.0);
  EXPECT_LT(ve.long_burn, 2.0);
  EXPECT_EQ(ve.status, HealthStatus::kWarn);
  EXPECT_EQ(r.status, HealthStatus::kWarn);
}

TEST(SloEngine, NoDataWindowsNeverAlert) {
  Registry reg;
  SloEngine engine(true, tight_config());
  // Epochs with no completed apps, no flits, no admits: the miss,
  // delivery, and admit objectives have no data and must report burn 0.
  for (int e = 0; e < 5; ++e) step_epoch(engine, reg, 0, 0, 0, 0, 0);
  const SloReport r = engine.report();
  EXPECT_DOUBLE_EQ(objective(r, "deadline_miss_rate").long_burn, 0.0);
  EXPECT_DOUBLE_EQ(objective(r, "delivery_ratio").long_burn, 0.0);
  EXPECT_DOUBLE_EQ(objective(r, "time_to_admit_p99").long_burn, 0.0);
  EXPECT_EQ(r.status, HealthStatus::kOk);
}

TEST(SloEngine, AdmitP99IsWindowedAndRetired) {
  Registry reg;
  SloConfig cfg = tight_config();  // admit target 0.1 s, long window 5
  SloEngine engine(true, cfg);
  // A slow admit in epoch 0, fast ones afterwards. While the slow wait
  // is inside the long window the p99 tracks it; after long_window
  // epochs it retires and the p99 falls back to the fast waits.
  engine.observe_admit(0.4);
  step_epoch(engine, reg, 0, 0, 1, 10, 10);
  SloReport r = engine.report();
  EXPECT_DOUBLE_EQ(r.long_window.admit_p99_s, 0.4);
  EXPECT_DOUBLE_EQ(objective(r, "time_to_admit_p99").long_burn, 4.0);

  for (int e = 0; e < 6; ++e) {
    engine.observe_admit(0.05);
    step_epoch(engine, reg, 0, 0, 1, 10, 10);
  }
  r = engine.report();
  EXPECT_DOUBLE_EQ(r.long_window.admit_p99_s, 0.05);
  EXPECT_EQ(r.long_window.admits, 5u);  // one admit per retained epoch
  EXPECT_DOUBLE_EQ(objective(r, "time_to_admit_p99").long_burn, 0.5);
}

TEST(SloEngine, SustainedAdmitOverrunAlerts) {
  Registry reg;
  SloConfig cfg = tight_config();  // admit target 0.1 s
  SloEngine engine(true, cfg);
  for (int e = 0; e < 5; ++e) {
    engine.observe_admit(0.25);  // burn 2.5 every epoch
    step_epoch(engine, reg, 0, 0, 1, 10, 10);
  }
  const SloReport r = engine.report();
  const SloObjective& admit = objective(r, "time_to_admit_p99");
  EXPECT_DOUBLE_EQ(admit.short_burn, 2.5);
  EXPECT_DOUBLE_EQ(admit.long_burn, 2.5);
  EXPECT_EQ(admit.status, HealthStatus::kCrit);
}

TEST(SloMerge, SumsRawWindowsAndTakesMaxAdmitP99) {
  SloReport a, b;
  a.long_window.epochs = 5;
  a.long_window.ves = 5;  // chip A: rate 1.0
  a.long_window.apps_completed = 10;
  a.long_window.deadline_misses = 1;
  a.long_window.admit_p99_s = 0.02;
  b.long_window.epochs = 5;
  b.long_window.ves = 0;  // chip B: rate 0.0
  b.long_window.apps_completed = 30;
  b.long_window.deadline_misses = 0;
  b.long_window.admit_p99_s = 0.07;

  const SloReport merged = merge_slo_reports({a, b});
  // Rates recompute from summed numerators/denominators: 5 VEs over 10
  // epochs — NOT the 0.5 average of the per-chip rates weighted equally
  // by chip, but the correct epoch-weighted rate.
  EXPECT_EQ(merged.long_window.epochs, 10u);
  EXPECT_DOUBLE_EQ(merged.long_window.ve_rate(), 0.5);
  EXPECT_DOUBLE_EQ(merged.long_window.deadline_miss_rate(), 1.0 / 40.0);
  EXPECT_DOUBLE_EQ(merged.long_window.admit_p99_s, 0.07);  // max, not sum

  EXPECT_EQ(merge_slo_reports({}).status, HealthStatus::kOk);
}

TEST(SloJson, ReportSerializesAllObjectives) {
  Registry reg;
  SloEngine engine(true, tight_config());
  for (int e = 0; e < 3; ++e) step_epoch(engine, reg, 1, 0, 1, 10, 10);
  std::ostringstream os;
  write_slo_json(os, engine.report());
  const std::string json = os.str();
  for (const char* name : {"ve_rate", "deadline_miss_rate",
                           "delivery_ratio", "time_to_admit_p99"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  EXPECT_NE(json.find("\"status\""), std::string::npos);
  EXPECT_NE(json.find("\"short_window\""), std::string::npos);
  EXPECT_NE(json.find("\"long_window\""), std::string::npos);
}

// --- HealthMonitor rule boundaries -----------------------------------

const HealthCheck& check_named(const HealthReport& report,
                               const std::string& name) {
  for (const HealthCheck& c : report.checks) {
    if (c.name == name) return c;
  }
  ADD_FAILURE() << "check " << name << " missing from report";
  static const HealthCheck none;
  return none;
}

TEST(HealthBoundaries, ValueExactlyAtWarnThresholdFiresWarn) {
  // ve_rate_warn defaults to 0.2: 1 VE over 5 epochs is exactly at the
  // threshold, and the >= comparison means it must fire.
  Registry reg;
  reg.counter("sim.epochs").inc(5);
  reg.counter("sim.ves").inc(1);
  const HealthReport report = HealthMonitor().evaluate(reg);
  EXPECT_EQ(check_named(report, "ve_rate").status, HealthStatus::kWarn);

  // One fewer VE-per-epoch stays OK: 1 over 6 is under 0.2.
  Registry under;
  under.counter("sim.epochs").inc(6);
  under.counter("sim.ves").inc(1);
  EXPECT_EQ(check_named(HealthMonitor().evaluate(under), "ve_rate").status,
            HealthStatus::kOk);
}

TEST(HealthBoundaries, ValueExactlyAtCritThresholdFiresCrit) {
  // ve_rate_crit defaults to 2.0: 10 VEs over 5 epochs sits exactly on
  // it.
  Registry reg;
  reg.counter("sim.epochs").inc(5);
  reg.counter("sim.ves").inc(10);
  const HealthReport report = HealthMonitor().evaluate(reg);
  EXPECT_EQ(check_named(report, "ve_rate").status, HealthStatus::kCrit);
  EXPECT_TRUE(report.critical());

  // deadline_miss_rate_crit defaults to 0.5: 5 misses over 10 completed.
  Registry miss;
  miss.counter("sim.apps_completed").inc(10);
  miss.counter("sim.deadline_misses").inc(5);
  EXPECT_EQ(check_named(HealthMonitor().evaluate(miss),
                        "deadline_miss_rate").status,
            HealthStatus::kCrit);
}

TEST(HealthBoundaries, QueueDepthGaugeEdges) {
  // queue_depth warn 8 / crit 32, gauge-valued (denominator 1).
  Registry reg;
  reg.gauge("sim.queue_depth").set(8.0);
  EXPECT_EQ(check_named(HealthMonitor().evaluate(reg), "queue_depth").status,
            HealthStatus::kWarn);
  reg.gauge("sim.queue_depth").set(32.0);
  EXPECT_EQ(check_named(HealthMonitor().evaluate(reg), "queue_depth").status,
            HealthStatus::kCrit);
  reg.gauge("sim.queue_depth").set(7.999);
  EXPECT_EQ(check_named(HealthMonitor().evaluate(reg), "queue_depth").status,
            HealthStatus::kOk);
}

TEST(HealthBoundaries, EmptyRegistryReportsNoDataEverywhere) {
  Registry reg;
  const HealthReport report = HealthMonitor().evaluate(reg);
  EXPECT_EQ(report.status, HealthStatus::kOk);
  EXPECT_EQ(check_named(report, "ve_rate").reason, "no data");
  EXPECT_EQ(check_named(report, "deadline_miss_rate").reason, "no data");
  EXPECT_EQ(check_named(report, "psn_cache_hit_rate").reason, "no data");
}

TEST(HealthBoundaries, SloOverloadAppendsBurnChecks) {
  Registry reg;
  SloEngine engine(true, tight_config());
  for (int e = 0; e < 5; ++e) step_epoch(engine, reg, 1, 0, 1, 10, 10);

  const HealthReport plain = HealthMonitor().evaluate(reg);
  const HealthReport with_slo =
      HealthMonitor().evaluate(reg, engine.report());
  EXPECT_EQ(with_slo.checks.size(), plain.checks.size() + 4);
  // Sustained burn 2.0 (1 VE/epoch vs budget 0.5) is exactly at
  // burn_crit: the folded-in check must carry the CRIT into the overall
  // verdict.
  const HealthCheck& burn = check_named(with_slo, "slo_ve_rate_burn");
  EXPECT_EQ(burn.status, HealthStatus::kCrit);
  EXPECT_DOUBLE_EQ(burn.value, 2.0);  // min(short, long) burn
  EXPECT_TRUE(with_slo.critical());
  EXPECT_FALSE(plain.critical());  // ve_rate 1.0 alone is only WARN

  // Render path: the SLO checks print like any other rule.
  std::ostringstream os;
  write_health_report(os, with_slo);
  EXPECT_NE(os.str().find("slo_ve_rate_burn"), std::string::npos);
}

}  // namespace
}  // namespace parm::obs
