// Snapshot / resume test suite.
//
//  - serializer round-trips and bounds-checked reads;
//  - crash-safe snapshot files (atomic replace, CRC validation);
//  - Rng and PsnCache state round-trips;
//  - the headline replay-equivalence invariant: a run snapshotted at any
//    epoch and resumed in a fresh simulator produces bit-identical
//    telemetry, per-app outcomes, and final SimResult to the
//    uninterrupted run — checked at several snapshot epochs on several
//    seeds;
//  - same-seed determinism: two fresh simulators over the same workload
//    are bit-identical (guards against unordered-container iteration
//    leaking into RNG draws or float accumulation);
//  - fingerprint rejection of mismatched configuration or workload.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "common/rng.hpp"
#include "exp/experiments.hpp"
#include "pdn/psn_cache.hpp"
#include "sim/system_sim.hpp"
#include "sim_result_compare.hpp"
#include "snapshot/snapshot_file.hpp"

namespace parm {
namespace {

std::string temp_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("parm_snapshot_test_") + tag);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// ------------------------------------------------------------ serializer

TEST(Serializer, RoundTripsAllPrimitiveTypes) {
  snapshot::Writer w;
  w.begin_section("TST0");
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.b(true);
  w.b(false);
  w.f64(3.141592653589793);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  w.str("hello snapshot");
  w.vec_f64({1.5, -2.5, 0.0});
  w.vec_bool({true, false, true, true});

  snapshot::Reader r(w.bytes());
  r.expect_section("TST0");
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.str(), "hello snapshot");
  EXPECT_EQ(r.vec_f64(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(r.vec_bool(), (std::vector<bool>{true, false, true, true}));
  EXPECT_TRUE(r.at_end());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Serializer, TruncatedReadThrows) {
  snapshot::Writer w;
  w.u64(7);
  snapshot::Reader r(
      {w.bytes().begin(), w.bytes().begin() + 4});  // half a u64
  EXPECT_THROW(r.u64(), snapshot::SnapshotError);
}

TEST(Serializer, WrongSectionTagThrows) {
  snapshot::Writer w;
  w.begin_section("AAA0");
  snapshot::Reader r(w.bytes());
  EXPECT_THROW(r.expect_section("BBB0"), snapshot::SnapshotError);
}

TEST(Serializer, HugeCountThrows) {
  snapshot::Writer w;
  w.u64(std::numeric_limits<std::uint64_t>::max());  // absurd element count
  snapshot::Reader r(w.bytes());
  EXPECT_THROW(r.count(8), snapshot::SnapshotError);
}

TEST(Serializer, TrailingGarbageThrows) {
  snapshot::Writer w;
  w.u32(1);
  w.u32(2);
  snapshot::Reader r(w.bytes());
  r.u32();
  EXPECT_THROW(r.expect_end(), snapshot::SnapshotError);
}

// --------------------------------------------------------- snapshot file

TEST(SnapshotFile, RoundTripsAndOverwritesAtomically) {
  const std::string path = temp_dir("file") + "/roundtrip.parmsnap";
  snapshot::Writer w;
  w.begin_section("DATA");
  w.u64(0xFEEDFACEull);
  w.f64(2.718281828459045);
  snapshot::write_file(path, w);

  snapshot::Reader r = snapshot::read_file(path);
  r.expect_section("DATA");
  EXPECT_EQ(r.u64(), 0xFEEDFACEull);
  EXPECT_EQ(r.f64(), 2.718281828459045);
  r.expect_end();

  // Overwrite with different content: the replace is atomic (temp file +
  // rename), so the file is never observed torn and reads back the new
  // payload afterwards.
  snapshot::Writer w2;
  w2.begin_section("DATA");
  w2.u64(42);
  w2.f64(1.0);
  snapshot::write_file(path, w2);
  snapshot::Reader r2 = snapshot::read_file(path);
  r2.expect_section("DATA");
  EXPECT_EQ(r2.u64(), 42u);
  EXPECT_EQ(r2.f64(), 1.0);

  // No temp files left behind.
  int files = 0;
  for (const auto& e : std::filesystem::directory_iterator(
           std::filesystem::path(path).parent_path())) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1);
}

TEST(SnapshotFile, MissingFileThrows) {
  EXPECT_THROW(snapshot::read_file("/nonexistent/dir/x.parmsnap"),
               snapshot::SnapshotError);
}

// ------------------------------------------------- component round-trips

TEST(RngSnapshot, RestoredStreamContinuesIdentically) {
  Rng a(987654321);
  (void)a.uniform01();
  (void)a.normal(0.0, 1.0);  // leaves a cached Box–Muller pair
  const Rng::State st = a.state();

  Rng b(1);  // different seed: state must fully override it
  b.restore(st);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.uniform01()),
              std::bit_cast<std::uint64_t>(b.uniform01()));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.normal(1.0, 2.0)),
              std::bit_cast<std::uint64_t>(b.normal(1.0, 2.0)));
  }
}

TEST(PsnCacheSnapshot, RoundTripPreservesLruOrder) {
  pdn::PsnCache cache(4);
  for (std::uint64_t k = 1; k <= 4; ++k) {
    pdn::DomainPsn psn;
    psn.peak_percent = static_cast<double>(k);
    psn.avg_percent = static_cast<double>(k) / 2.0;
    cache.put(k, psn);
  }
  pdn::DomainPsn out;
  ASSERT_TRUE(cache.get(1, out));  // key 1 becomes most recent

  snapshot::Writer w;
  cache.save(w);

  pdn::PsnCache restored(4);
  snapshot::Reader r(w.bytes());
  restored.restore(r);
  EXPECT_EQ(restored.size(), 4u);

  // Inserting a new key must evict key 2 (now least recent), not key 1.
  pdn::DomainPsn psn;
  restored.put(99, psn);
  EXPECT_TRUE(restored.get(1, out));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(out.peak_percent),
            std::bit_cast<std::uint64_t>(1.0));
  EXPECT_FALSE(restored.get(2, out));
}

TEST(PsnCacheSnapshot, CapacityMismatchThrows) {
  pdn::PsnCache cache(4);
  snapshot::Writer w;
  cache.save(w);
  pdn::PsnCache other(8);
  snapshot::Reader r(w.bytes());
  EXPECT_THROW(other.restore(r), snapshot::SnapshotError);
}

// ------------------------------------------------- replay equivalence

namespace sim_ns = parm::sim;

sim_ns::SimConfig replay_config(std::uint64_t seed) {
  sim_ns::SimConfig cfg = exp::default_sim_config();
  cfg.framework.mapping = "PARM";
  cfg.framework.routing = "PANR";
  cfg.max_sim_time_s = 0.040;  // 40 control epochs
  cfg.record_telemetry = true;
  cfg.seed = seed;
  return cfg;
}

std::vector<appmodel::AppArrival> replay_workload(std::uint64_t seed) {
  appmodel::SequenceConfig seq;
  seq.kind = appmodel::SequenceKind::Mixed;
  seq.app_count = 6;
  seq.inter_arrival_s = 0.005;  // dense arrivals inside the 40 epochs
  seq.seed = seed;
  return appmodel::make_sequence(seq);
}

class ReplayEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplayEquivalence, ResumeMatchesUninterruptedRunBitForBit) {
  const std::uint64_t seed = GetParam();
  const std::string dir =
      temp_dir(("replay_" + std::to_string(seed)).c_str());

  // Reference: uninterrupted 40-epoch run, snapshotting every epoch.
  sim_ns::SystemSimulator straight(replay_config(seed),
                                   replay_workload(seed));
  straight.enable_periodic_snapshots(1, dir);
  const sim_ns::SimResult reference = straight.run();
  ASSERT_GE(straight.epoch(), 21u);  // deep enough for every resume point

  for (const std::uint64_t resume_epoch : {1u, 7u, 20u}) {
    SCOPED_TRACE("resume from epoch " + std::to_string(resume_epoch));
    const std::string file =
        dir + "/epoch_" + std::to_string(resume_epoch) + ".parmsnap";
    sim_ns::SystemSimulator resumed(replay_config(seed),
                                    replay_workload(seed));
    resumed.restore_snapshot(file);
    EXPECT_EQ(resumed.epoch(), resume_epoch);
    sim_ns::expect_identical(reference, resumed.run());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayEquivalence,
                         ::testing::Values(42u, 1234u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(ReplayEquivalence, ResumeAcrossParallelSerialPsnBoundary) {
  // parallel_psn is excluded from the fingerprint because both paths are
  // bit-identical: a snapshot from a parallel run must resume in a serial
  // simulator and still match.
  const std::string dir = temp_dir("replay_psn_mode");
  sim_ns::SystemSimulator straight(replay_config(7), replay_workload(7));
  straight.enable_periodic_snapshots(7, dir);
  const sim_ns::SimResult reference = straight.run();

  sim_ns::SimConfig serial = replay_config(7);
  serial.parallel_psn = false;
  sim_ns::SystemSimulator resumed(serial, replay_workload(7));
  resumed.restore_snapshot(dir + "/epoch_7.parmsnap");
  sim_ns::expect_identical(reference, resumed.run());
}

TEST(SameSeedDeterminism, TwoFreshRunsAreBitIdentical) {
  sim_ns::SystemSimulator a(replay_config(42), replay_workload(42));
  sim_ns::SystemSimulator b(replay_config(42), replay_workload(42));
  sim_ns::expect_identical(a.run(), b.run());
}

// ------------------------------------------------- fingerprint rejection

TEST(SnapshotFingerprint, DifferentSeedIsRejected) {
  const std::string dir = temp_dir("fp_seed");
  sim_ns::SystemSimulator original(replay_config(42), replay_workload(42));
  original.enable_periodic_snapshots(1, dir);
  (void)original.run();

  sim_ns::SystemSimulator other(replay_config(43), replay_workload(42));
  EXPECT_THROW(other.restore_snapshot(dir + "/epoch_1.parmsnap"),
               snapshot::SnapshotError);
}

TEST(SnapshotFingerprint, DifferentWorkloadIsRejected) {
  const std::string dir = temp_dir("fp_workload");
  sim_ns::SystemSimulator original(replay_config(42), replay_workload(42));
  original.enable_periodic_snapshots(1, dir);
  (void)original.run();

  sim_ns::SystemSimulator other(replay_config(42), replay_workload(99));
  EXPECT_THROW(other.restore_snapshot(dir + "/epoch_1.parmsnap"),
               snapshot::SnapshotError);
}

TEST(SnapshotFingerprint, DifferentRoutingIsRejected) {
  const std::string dir = temp_dir("fp_routing");
  sim_ns::SystemSimulator original(replay_config(42), replay_workload(42));
  original.enable_periodic_snapshots(1, dir);
  (void)original.run();

  sim_ns::SimConfig xy = replay_config(42);
  xy.framework.routing = "XY";
  sim_ns::SystemSimulator other(xy, replay_workload(42));
  EXPECT_THROW(other.restore_snapshot(dir + "/epoch_1.parmsnap"),
               snapshot::SnapshotError);
}

}  // namespace
}  // namespace parm
