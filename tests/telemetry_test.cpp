// Tests for simulator telemetry recording and voltage-emergency fault
// injection.
#include <gtest/gtest.h>

#include <sstream>

#include "exp/experiments.hpp"
#include "sim/system_sim.hpp"

namespace parm::sim {
namespace {

appmodel::SequenceConfig tiny_sequence(std::uint64_t seed) {
  appmodel::SequenceConfig cfg;
  cfg.kind = appmodel::SequenceKind::Compute;
  cfg.app_count = 2;
  cfg.inter_arrival_s = 0.05;
  cfg.seed = seed;
  return cfg;
}

SimConfig base_cfg() {
  SimConfig cfg = exp::default_sim_config();
  cfg.framework.mapping = "PARM";
  cfg.framework.routing = "XY";
  return cfg;
}

TEST(Telemetry, DisabledByDefault) {
  SystemSimulator sim(base_cfg(), appmodel::make_sequence(tiny_sequence(1)));
  const SimResult r = sim.run();
  EXPECT_TRUE(r.telemetry.empty());
}

TEST(Telemetry, RecordsOneSamplePerEpoch) {
  SimConfig cfg = base_cfg();
  cfg.record_telemetry = true;
  SystemSimulator sim(cfg, appmodel::make_sequence(tiny_sequence(1)));
  const SimResult r = sim.run();
  ASSERT_FALSE(r.telemetry.empty());
  const auto& samples = r.telemetry.samples();
  // One sample per epoch: timestamps advance by epoch_s.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_NEAR(samples[i].time_s - samples[i - 1].time_s, cfg.epoch_s,
                1e-12);
  }
  // The run covers the whole makespan.
  EXPECT_NEAR(samples.back().time_s, r.makespan_s, 2 * cfg.epoch_s);
  // While apps were running, power and occupancy must be visible.
  bool saw_activity = false;
  for (const auto& s : samples) {
    EXPECT_GE(s.running_apps, 0);
    EXPECT_GE(s.chip_power_w, 0.0);
    if (s.running_apps > 0) {
      saw_activity = true;
      EXPECT_GT(s.busy_tiles, 0);
      EXPECT_GT(s.chip_power_w, 0.0);
    }
  }
  EXPECT_TRUE(saw_activity);
}

TEST(Telemetry, CsvHasHeaderAndRows) {
  SimConfig cfg = base_cfg();
  cfg.record_telemetry = true;
  SystemSimulator sim(cfg, appmodel::make_sequence(tiny_sequence(2)));
  const SimResult r = sim.run();
  std::ostringstream os;
  r.telemetry.write_csv(os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("time_s,peak_psn_percent", 0), 0u);
  // Header + one line per sample.
  const auto lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, r.telemetry.samples().size() + 1);
}

TEST(FaultInjection, ForcedEmergencyRollsTaskBack) {
  // Same run with and without an injected VE storm on one tile: the
  // injected run must record more VEs and at least as late a finish.
  const auto seq = appmodel::make_sequence(tiny_sequence(3));

  SimConfig clean = base_cfg();
  SystemSimulator sim_clean(clean, seq);
  const SimResult r_clean = sim_clean.run();

  SimConfig faulty = base_cfg();
  // PARM maps the first app around the central free domains; storm a
  // whole column of tiles between 10 and 60 ms to be sure we hit it.
  for (int k = 0; k < 50; ++k) {
    for (TileId t = 0; t < 60; ++t) {
      faulty.fault_injections.push_back(
          {0.010 + 0.001 * k, t});
    }
  }
  SystemSimulator sim_faulty(faulty, seq);
  const SimResult r_faulty = sim_faulty.run();

  EXPECT_GT(r_faulty.total_ve_count, r_clean.total_ve_count + 40);
  EXPECT_GE(r_faulty.makespan_s, r_clean.makespan_s);
  EXPECT_EQ(r_faulty.completed_count, 2);  // still completes (rolls back)
}

TEST(FaultInjection, UnsortedInjectionsRejected) {
  SimConfig cfg = base_cfg();
  cfg.fault_injections = {{0.5, 3}, {0.1, 4}};
  EXPECT_THROW(
      SystemSimulator(cfg, appmodel::make_sequence(tiny_sequence(4))),
      CheckError);
}

TEST(FaultInjection, InjectionOnIdleTileIsHarmless) {
  SimConfig cfg = base_cfg();
  cfg.fault_injections = {{0.001, 59}};  // far corner, likely dark
  SystemSimulator sim(cfg, appmodel::make_sequence(tiny_sequence(5)));
  const SimResult r = sim.run();
  EXPECT_EQ(r.completed_count, 2);
}

}  // namespace
}  // namespace parm::sim
