// Tests for simulator telemetry recording and voltage-emergency fault
// injection.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exp/experiments.hpp"
#include "obs/metrics.hpp"
#include "sim/system_sim.hpp"

namespace parm::sim {
namespace {

appmodel::SequenceConfig tiny_sequence(std::uint64_t seed) {
  appmodel::SequenceConfig cfg;
  cfg.kind = appmodel::SequenceKind::Compute;
  cfg.app_count = 2;
  cfg.inter_arrival_s = 0.05;
  cfg.seed = seed;
  return cfg;
}

SimConfig base_cfg() {
  SimConfig cfg = exp::default_sim_config();
  cfg.framework.mapping = "PARM";
  cfg.framework.routing = "XY";
  return cfg;
}

TEST(Telemetry, DisabledByDefault) {
  SystemSimulator sim(base_cfg(), appmodel::make_sequence(tiny_sequence(1)));
  const SimResult r = sim.run();
  EXPECT_TRUE(r.telemetry.empty());
}

TEST(Telemetry, RecordsOneSamplePerEpoch) {
  SimConfig cfg = base_cfg();
  cfg.record_telemetry = true;
  SystemSimulator sim(cfg, appmodel::make_sequence(tiny_sequence(1)));
  const SimResult r = sim.run();
  ASSERT_FALSE(r.telemetry.empty());
  const auto& samples = r.telemetry.samples();
  // One sample per epoch: timestamps advance by epoch_s.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_NEAR(samples[i].time_s - samples[i - 1].time_s, cfg.epoch_s,
                1e-12);
  }
  // The run covers the whole makespan.
  EXPECT_NEAR(samples.back().time_s, r.makespan_s, 2 * cfg.epoch_s);
  // While apps were running, power and occupancy must be visible.
  bool saw_activity = false;
  for (const auto& s : samples) {
    EXPECT_GE(s.running_apps, 0);
    EXPECT_GE(s.chip_power_w, 0.0);
    if (s.running_apps > 0) {
      saw_activity = true;
      EXPECT_GT(s.busy_tiles, 0);
      EXPECT_GT(s.chip_power_w, 0.0);
    }
  }
  EXPECT_TRUE(saw_activity);
}

TEST(Telemetry, CsvHasHeaderAndRows) {
  SimConfig cfg = base_cfg();
  cfg.record_telemetry = true;
  SystemSimulator sim(cfg, appmodel::make_sequence(tiny_sequence(2)));
  const SimResult r = sim.run();
  std::ostringstream os;
  r.telemetry.write_csv(os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("time_s,peak_psn_percent", 0), 0u);
  // Header + one line per sample.
  const auto lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, r.telemetry.samples().size() + 1);
}

TEST(Telemetry, CsvRoundTrip) {
  // write_csv output parses back to the recorded samples: header column
  // count matches every row, and numeric fields survive the trip.
  TelemetryRecorder rec;
  EpochSample a;
  a.time_s = 0.001;
  a.peak_psn_percent = 4.25;
  a.avg_psn_percent = 1.5;
  a.chip_power_w = 12.5;
  a.running_apps = 3;
  a.queued_apps = 1;
  a.busy_tiles = 24;
  a.noc_latency_cycles = 7.75;
  a.ve_count = 2;
  a.pdn_solves = 15;
  a.mapper_candidates = 40;
  a.panr_reroutes = 9;
  EpochSample b;
  b.time_s = 0.002;
  rec.record(a);
  rec.record(b);

  std::ostringstream os;
  rec.write_csv(os);
  std::istringstream in(os.str());

  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  const auto split = [](const std::string& line) {
    std::vector<std::string> out;
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) out.push_back(cell);
    return out;
  };
  const std::vector<std::string> cols = split(header);
  ASSERT_EQ(cols.size(), 12u);
  EXPECT_EQ(cols.front(), "time_s");
  EXPECT_EQ(cols.back(), "panr_reroutes");

  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) rows.push_back(split(line));
  }
  ASSERT_EQ(rows.size(), rec.samples().size());
  for (const auto& row : rows) EXPECT_EQ(row.size(), cols.size());

  EXPECT_DOUBLE_EQ(std::stod(rows[0][0]), a.time_s);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][1]), a.peak_psn_percent);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][3]), a.chip_power_w);
  EXPECT_EQ(std::stoi(rows[0][4]), a.running_apps);
  EXPECT_EQ(std::stoi(rows[0][8]), a.ve_count);
  EXPECT_EQ(std::stol(rows[0][9]), a.pdn_solves);
  EXPECT_EQ(std::stol(rows[0][10]), a.mapper_candidates);
  EXPECT_EQ(std::stol(rows[0][11]), a.panr_reroutes);
  EXPECT_DOUBLE_EQ(std::stod(rows[1][0]), b.time_s);
}

TEST(Telemetry, EpochSamplesCarryRegistryDeltas) {
  // A telemetry run must see solver invocations in its per-epoch deltas,
  // and the deltas must sum to the growth of the simulator's own
  // (instance-scoped) registry over the run. The process-default registry
  // must stay untouched — the engine never writes there.
  SimConfig cfg = base_cfg();
  cfg.record_telemetry = true;
  const std::uint64_t default_solves_before =
      obs::Registry::instance().counter_value("pdn.solves");
  SystemSimulator sim(cfg, appmodel::make_sequence(tiny_sequence(6)));
  EXPECT_EQ(sim.metrics().counter_value("pdn.solves"), 0u);
  const SimResult r = sim.run();
  const std::uint64_t solves_after =
      sim.metrics().counter_value("pdn.solves");

  std::int64_t total_solves = 0;
  for (const auto& s : r.telemetry.samples()) {
    EXPECT_GE(s.pdn_solves, 0);
    EXPECT_GE(s.mapper_candidates, 0);
    EXPECT_GE(s.panr_reroutes, 0);
    total_solves += s.pdn_solves;
  }
  EXPECT_GT(total_solves, 0);
  EXPECT_EQ(static_cast<std::uint64_t>(total_solves), solves_after);
  EXPECT_EQ(obs::Registry::instance().counter_value("pdn.solves"),
            default_solves_before);
}

TEST(FaultInjection, ForcedEmergencyRollsTaskBack) {
  // Same run with and without an injected VE storm on one tile: the
  // injected run must record more VEs and at least as late a finish.
  const auto seq = appmodel::make_sequence(tiny_sequence(3));

  SimConfig clean = base_cfg();
  SystemSimulator sim_clean(clean, seq);
  const SimResult r_clean = sim_clean.run();

  SimConfig faulty = base_cfg();
  // PARM maps the first app around the central free domains; storm a
  // whole column of tiles between 10 and 60 ms to be sure we hit it.
  for (int k = 0; k < 50; ++k) {
    for (TileId t = 0; t < 60; ++t) {
      faulty.fault_injections.push_back(
          {0.010 + 0.001 * k, t});
    }
  }
  SystemSimulator sim_faulty(faulty, seq);
  const SimResult r_faulty = sim_faulty.run();

  EXPECT_GT(r_faulty.total_ve_count, r_clean.total_ve_count + 40);
  EXPECT_GE(r_faulty.makespan_s, r_clean.makespan_s);
  EXPECT_EQ(r_faulty.completed_count, 2);  // still completes (rolls back)
}

TEST(FaultInjection, UnsortedInjectionsRejected) {
  SimConfig cfg = base_cfg();
  cfg.fault_injections = {{0.5, 3}, {0.1, 4}};
  EXPECT_THROW(
      SystemSimulator(cfg, appmodel::make_sequence(tiny_sequence(4))),
      CheckError);
}

TEST(FaultInjection, InjectionOnIdleTileIsHarmless) {
  SimConfig cfg = base_cfg();
  cfg.fault_injections = {{0.001, 59}};  // far corner, likely dark
  SystemSimulator sim(cfg, appmodel::make_sequence(tiny_sequence(5)));
  const SimResult r = sim.run();
  EXPECT_EQ(r.completed_count, 2);
}

}  // namespace
}  // namespace parm::sim
