#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace parm {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroWorkersDegradesToSerialOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(64);
  pool.parallel_for(seen.size(),
                    [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, EmptyAndSingleItemBatches) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> one{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    one.fetch_add(1);
  });
  EXPECT_EQ(one.load(), 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    // Caller participation means inner batches always make progress even
    // when every worker is already busy with the outer batch.
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, FirstExceptionIsRethrownAndBatchDrains) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.parallel_for(50,
                        [&](std::size_t i) {
                          executed.fetch_add(1);
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The batch always drains: every index ran despite the failure.
  EXPECT_EQ(executed.load(), 50);
}

TEST(ThreadPool, PoolRemainsUsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   4, [](std::size_t) { throw std::runtime_error("once"); }),
               std::runtime_error);
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, SharedPoolHasAtLeastOneWorker) {
  EXPECT_GE(ThreadPool::shared().thread_count(), 1u);
  std::atomic<int> sum{0};
  ThreadPool::shared().parallel_for(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i) + 1);
  });
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, LargeBatchAggregatesCorrectly) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 20000;
  std::vector<double> out(kN, 0.0);
  pool.parallel_for(kN, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  // Serial reduction over per-index slots (the determinism contract).
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 0.5 * (kN - 1.0) * kN / 2.0);
}

}  // namespace
}  // namespace parm
