// Tests for the bounded time-series store: ring capacity and eviction,
// RRD-style downsample aggregation, the O(capacity) memory bound over
// long runs, window queries, exports, fleet merging, and snapshot
// round-trips at every downsample level.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "snapshot/serializer.hpp"

namespace parm::obs {
namespace {

TimeSeriesConfig small_cfg() {
  TimeSeriesConfig cfg;
  cfg.capacity = 4;
  cfg.levels = 3;
  cfg.downsample = 2;
  return cfg;
}

// ---------------------------------------------------------------------
// TimeSeries: ring + downsampling

TEST(TimeSeries, Level0HoldsRawSamplesOldestFirst) {
  TimeSeries ts(small_cfg());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ts.append(0.1 * i, 10.0 * i), 0u);
  }
  const auto s = ts.samples(0);
  ASSERT_EQ(s.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(s[i].t_start, 0.1 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s[i].t_end, s[i].t_start);
    EXPECT_DOUBLE_EQ(s[i].min, 10.0 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s[i].max, s[i].min);
    EXPECT_EQ(s[i].count, 1u);
  }
}

TEST(TimeSeries, RingEvictsOldestAndCountsEvictions) {
  TimeSeries ts(small_cfg());  // capacity 4
  std::size_t evicted = 0;
  for (int i = 0; i < 10; ++i) evicted += ts.append(i, i);
  EXPECT_EQ(ts.appended(), 10u);
  const auto s = ts.samples(0);
  ASSERT_EQ(s.size(), 4u);
  // The ring keeps the newest 4 raw samples.
  EXPECT_DOUBLE_EQ(s.front().t_start, 6.0);
  EXPECT_DOUBLE_EQ(s.back().t_start, 9.0);
  // 6 raw overwrites at level 0, plus level-1 overwrites (10 raw → 5
  // closed level-1 aggregates into a 4-slot ring → 1 eviction).
  EXPECT_EQ(evicted, 7u);
}

TEST(TimeSeries, DownsampleAggregatesMinMaxMeanOverSpan) {
  // downsample=2: every 2 raw samples close one level-1 aggregate; every
  // 2 level-1 aggregates close one level-2 aggregate (4 raw samples).
  TimeSeries ts(small_cfg());
  const double values[] = {3.0, 7.0, 1.0, 9.0};
  for (int i = 0; i < 4; ++i) ts.append(0.5 * i, values[i]);

  const auto l1 = ts.samples(1);
  ASSERT_EQ(l1.size(), 2u);
  EXPECT_DOUBLE_EQ(l1[0].min, 3.0);
  EXPECT_DOUBLE_EQ(l1[0].max, 7.0);
  EXPECT_DOUBLE_EQ(l1[0].mean(), 5.0);
  EXPECT_DOUBLE_EQ(l1[0].t_start, 0.0);
  EXPECT_DOUBLE_EQ(l1[0].t_end, 0.5);
  EXPECT_EQ(l1[0].count, 2u);
  EXPECT_DOUBLE_EQ(l1[1].min, 1.0);
  EXPECT_DOUBLE_EQ(l1[1].max, 9.0);

  const auto l2 = ts.samples(2);
  ASSERT_EQ(l2.size(), 1u);
  EXPECT_DOUBLE_EQ(l2[0].min, 1.0);
  EXPECT_DOUBLE_EQ(l2[0].max, 9.0);
  EXPECT_DOUBLE_EQ(l2[0].mean(), 5.0);
  EXPECT_DOUBLE_EQ(l2[0].t_start, 0.0);
  EXPECT_DOUBLE_EQ(l2[0].t_end, 1.5);
  EXPECT_EQ(l2[0].count, 4u);
}

TEST(TimeSeries, LongRunRetainsBoundedSamplesAtEveryLevel) {
  // The memory-bound claim: after ~a million appends every level still
  // holds at most `capacity` samples, and the coarsest level reaches
  // back downsample^2 times further than level 0.
  TimeSeriesConfig cfg;
  cfg.capacity = 16;
  cfg.levels = 3;
  cfg.downsample = 4;
  TimeSeries ts(cfg);
  const int n = 1 << 20;
  for (int i = 0; i < n; ++i) ts.append(1e-3 * i, i);
  EXPECT_EQ(ts.appended(), static_cast<std::uint64_t>(n));
  for (std::size_t level = 0; level < 3; ++level) {
    EXPECT_LE(ts.samples(level).size(), cfg.capacity) << level;
    EXPECT_EQ(ts.samples(level).size(), cfg.capacity) << level;
  }
  // Level k spans capacity × downsample^k raw samples.
  const double span0 =
      ts.samples(0).back().t_end - ts.samples(0).front().t_start;
  const double span2 =
      ts.samples(2).back().t_end - ts.samples(2).front().t_start;
  EXPECT_GT(span2, 10.0 * span0);
  // The newest raw sample is always retained.
  EXPECT_DOUBLE_EQ(ts.samples(0).back().max, n - 1);
}

TEST(TimeSeries, QueryPicksFinestLevelCoveringTheWindow) {
  TimeSeriesConfig cfg;
  cfg.capacity = 4;
  cfg.levels = 2;
  cfg.downsample = 2;
  TimeSeries ts(cfg);
  for (int i = 0; i < 12; ++i) ts.append(i, i);
  // Level 0 retains t=8..11; level 1 retains spans from t=4.
  std::size_t level = 99;
  auto recent = ts.query(8.5, 11.0, &level);
  EXPECT_EQ(level, 0u);
  EXPECT_FALSE(recent.empty());
  auto older = ts.query(5.0, 11.0, &level);
  EXPECT_EQ(level, 1u);
  EXPECT_FALSE(older.empty());
  // A window older than all history falls back to the coarsest
  // non-empty level rather than returning nothing silently.
  auto ancient = ts.query(-10.0, -5.0, &level);
  EXPECT_EQ(level, 1u);
}

TEST(TimeSeries, RetainedFromIsInfinityWhenEmpty) {
  TimeSeries ts(small_cfg());
  EXPECT_TRUE(std::isinf(ts.retained_from(0)));
  ts.append(2.5, 1.0);
  EXPECT_DOUBLE_EQ(ts.retained_from(0), 2.5);
}

// ---------------------------------------------------------------------
// Snapshot round-trips

// Serializes `ts` and restores it into a fresh series (different shape
// on purpose: restore adopts the snapshot's).
TimeSeries roundtrip(const TimeSeries& ts) {
  snapshot::Writer w;
  ts.save(w);
  snapshot::Reader r(w.bytes());
  TimeSeriesConfig other;
  other.capacity = 2;
  other.levels = 1;
  TimeSeries restored(other);
  restored.restore(r);
  r.expect_end();
  return restored;
}

void expect_same_samples(const TimeSeries& a, const TimeSeries& b) {
  ASSERT_EQ(a.level_count(), b.level_count());
  EXPECT_EQ(a.appended(), b.appended());
  for (std::size_t level = 0; level < a.level_count(); ++level) {
    const auto sa = a.samples(level);
    const auto sb = b.samples(level);
    ASSERT_EQ(sa.size(), sb.size()) << "level " << level;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].t_start, sb[i].t_start);
      EXPECT_EQ(sa[i].t_end, sb[i].t_end);
      EXPECT_EQ(sa[i].min, sb[i].min);
      EXPECT_EQ(sa[i].max, sb[i].max);
      EXPECT_EQ(sa[i].sum, sb[i].sum);
      EXPECT_EQ(sa[i].count, sb[i].count);
    }
  }
}

TEST(TimeSeries, SnapshotRoundTripsEveryDownsampleLevel) {
  // Appends chosen so every level holds retained samples AND an open
  // (partially folded) aggregate: 11 raw with downsample 2 leaves level
  // 1 mid-fold and level 2 mid-fold.
  TimeSeries ts(small_cfg());
  for (int i = 0; i < 11; ++i) ts.append(0.25 * i, std::sin(0.3 * i));
  TimeSeries restored = roundtrip(ts);
  expect_same_samples(ts, restored);
}

TEST(TimeSeries, RestoredSeriesContinuesAppendingIdentically) {
  // The bit-identity property the engine equivalence test relies on:
  // snapshot mid-run, keep appending to both the original and the
  // restored copy, and every level stays identical — including ring
  // wrap-arounds placed via the ordinal cursor.
  TimeSeries ts(small_cfg());
  for (int i = 0; i < 7; ++i) ts.append(i, 2.0 * i);
  TimeSeries restored = roundtrip(ts);
  for (int i = 7; i < 40; ++i) {
    const double v = std::cos(0.7 * i);
    EXPECT_EQ(ts.append(i, v), restored.append(i, v)) << i;
  }
  expect_same_samples(ts, restored);
}

TEST(TimeSeries, RestoreRejectsCorruptShape) {
  TimeSeries ts(small_cfg());
  ts.append(0.0, 1.0);
  snapshot::Writer w;
  ts.save(w);
  // Flip the capacity field (first u64 of the payload) to zero.
  std::vector<std::uint8_t> bytes = w.bytes();
  for (int i = 0; i < 8; ++i) bytes[static_cast<std::size_t>(i)] = 0;
  snapshot::Reader r(bytes);
  TimeSeries victim(small_cfg());
  EXPECT_THROW(victim.restore(r), snapshot::SnapshotError);
}

// ---------------------------------------------------------------------
// TimeSeriesStore

TEST(TimeSeriesStore, DisabledStoreIgnoresAppends) {
  Registry reg;
  TimeSeriesStore store(false, small_cfg(), &reg);
  EXPECT_FALSE(store.enabled());
  store.append("a", 0.0, 1.0);
  EXPECT_EQ(store.samples_total(), 0u);
  EXPECT_EQ(store.series_count(), 0u);
  // Handles can still be resolved (phases do this unconditionally once).
  TimeSeries& s = store.series("a");
  (void)s;
  EXPECT_EQ(store.series_count(), 1u);
}

TEST(TimeSeriesStore, AppendUpdatesSelfMetrics) {
  Registry reg;
  TimeSeriesConfig cfg = small_cfg();  // capacity 4
  TimeSeriesStore store(true, cfg, &reg);
  for (int i = 0; i < 6; ++i) store.append("psn", 0.1 * i, i);
  EXPECT_EQ(store.samples_total(), 6u);
  EXPECT_GT(store.evictions_total(), 0u);
  EXPECT_EQ(reg.counter_value("timeseries.samples"), 6u);
  EXPECT_EQ(reg.counter_value("timeseries.evictions"),
            store.evictions_total());
  EXPECT_DOUBLE_EQ(reg.gauge("timeseries.series").value(), 1.0);

  // note_appends is the handle-path equivalent of append's accounting.
  store.note_appends(3, 1);
  EXPECT_EQ(store.samples_total(), 9u);
  EXPECT_EQ(reg.counter_value("timeseries.samples"), 9u);
}

TEST(TimeSeriesStore, DumpJsonlAndCsvAreDeterministic) {
  Registry reg;
  TimeSeriesStore store(true, small_cfg(), &reg);
  store.append("b.second", 0.0, 2.0);
  store.append("a.first", 0.0, 1.0);
  store.append("a.first", 1.0, 3.0);

  std::ostringstream jsonl;
  store.dump_jsonl(jsonl);
  const std::string out = jsonl.str();
  // Series in name order; every line carries the full sample schema.
  EXPECT_LT(out.find("\"a.first\""), out.find("\"b.second\""));
  EXPECT_NE(out.find("\"level\":0"), std::string::npos);
  EXPECT_NE(out.find("\"t_start\":"), std::string::npos);
  EXPECT_NE(out.find("\"count\":1"), std::string::npos);

  std::ostringstream csv;
  store.write_csv(csv);
  EXPECT_EQ(csv.str().rfind("series,level,t_start,t_end,min,max,mean,count",
                            0),
            0u);

  std::ostringstream again;
  store.dump_jsonl(again);
  EXPECT_EQ(out, again.str());
}

TEST(TimeSeriesStore, MergeFromPrefixesChipAndKeepsCountersStill) {
  Registry fleet_reg, chip_reg;
  TimeSeriesStore fleet(true, small_cfg(), &fleet_reg);
  TimeSeriesStore chip(true, small_cfg(), &chip_reg);
  chip.append("psn.domain0.peak_percent", 0.0, 4.0);
  chip.append("psn.domain0.peak_percent", 1.0, 5.0);

  fleet.merge_from(chip, 3);
  ASSERT_EQ(fleet.series_count(), 1u);
  const TimeSeries* merged = fleet.find("chip3.psn.domain0.peak_percent");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->appended(), 2u);
  EXPECT_DOUBLE_EQ(merged->samples(0)[1].max, 5.0);
  // Totals fold; the registry counters do NOT move (the fleet driver
  // merges chip registries separately — advancing both double-counts).
  EXPECT_EQ(fleet.samples_total(), 2u);
  EXPECT_EQ(fleet_reg.counter_value("timeseries.samples"), 0u);
}

TEST(TimeSeriesStore, SnapshotRoundTripRestoresSeriesAndCounters) {
  Registry reg;
  TimeSeriesStore store(true, small_cfg(), &reg);
  for (int i = 0; i < 9; ++i) {
    store.append("x", 0.1 * i, i);
    store.append("y", 0.1 * i, -i);
  }
  snapshot::Writer w;
  store.save(w);

  Registry reg2;
  TimeSeriesConfig other;
  other.capacity = 64;
  TimeSeriesStore restored(true, other, &reg2);
  restored.append("stale", 0.0, 0.0);  // replaced wholesale by restore
  snapshot::Reader r(w.bytes());
  restored.restore(r);
  r.expect_end();

  EXPECT_EQ(restored.series_count(), 2u);
  EXPECT_EQ(restored.find("stale"), nullptr);
  EXPECT_EQ(restored.samples_total(), store.samples_total());
  EXPECT_EQ(restored.evictions_total(), store.evictions_total());
  // Self-metrics are rewritten to the restored totals (the telemetry
  // watermark pattern) so exposition resumes mid-stream.
  EXPECT_EQ(reg2.counter_value("timeseries.samples"),
            store.samples_total());
  EXPECT_DOUBLE_EQ(reg2.gauge("timeseries.series").value(), 2.0);
  ASSERT_NE(restored.find("x"), nullptr);
  expect_same_samples(*store.find("x"), *restored.find("x"));
  expect_same_samples(*store.find("y"), *restored.find("y"));

  // Byte-identical export after restore — the dump is pure state.
  std::ostringstream a, b;
  store.dump_jsonl(a);
  restored.dump_jsonl(b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace parm::obs
