// Property tests for the universal topology abstraction and its
// auto-generated deadlock-free routing tables (noc/topology.hpp,
// noc/routing_table.hpp):
//  - mesh tables reproduce XY dimension-ordered hop counts exactly;
//  - all-pairs reachability on every built-in topology kind;
//  - channel-dependency-graph acyclicity re-proved via verify(),
//    including every single-link-failure subgraph of the default mesh
//    (the routing-table generalization of the legacy 104-link check);
//  - port model invariants (reverse ports, port names) and the
//    power-domain partition contract the PDN/mapping layers rely on;
//  - the DirectionSet overflow regression (silent out-of-bounds write
//    until the capacity check was added).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "noc/routing.hpp"
#include "noc/routing_table.hpp"
#include "noc/topology.hpp"

namespace parm::noc {
namespace {

std::vector<std::shared_ptr<const Topology>> builtin_topologies() {
  return {
      Topology::mesh(10, 6),    Topology::torus(6, 4),
      Topology::cmesh(6, 4),    Topology::butterfly(4, 4),
      Topology::mesh3d(4, 4, 2),
      Topology::from_text("tiles 8\n"
                          "link 0 1\nlink 1 2\nlink 2 3\nlink 3 4\n"
                          "link 4 5\nlink 5 6\nlink 6 7\nlink 7 0\n"
                          "link 0 4\n",
                          "<ring8>"),
  };
}

// ------------------------------------------------------------ port model

TEST(Topology, MeshKeepsLegacyPortNumbering) {
  const auto topo = Topology::mesh(10, 6);
  EXPECT_EQ(topo->ports(), 5);
  EXPECT_EQ(topo->local_port(), 4);
  // Tile 11 = (1,1): all four cardinal neighbors live, legacy order.
  EXPECT_EQ(topo->link_dst(11, 0), 12);  // E
  EXPECT_EQ(topo->link_dst(11, 1), 10);  // W
  EXPECT_EQ(topo->link_dst(11, 2), 21);  // N
  EXPECT_EQ(topo->link_dst(11, 3), 1);   // S
  // Corner tile 0 has only E and N.
  EXPECT_EQ(topo->link_dst(0, 1), kInvalidTile);
  EXPECT_EQ(topo->link_dst(0, 3), kInvalidTile);
  EXPECT_EQ(topo->radix(0), 2);
  EXPECT_EQ(topo->radix(11), 4);
}

TEST(Topology, ReversePortsAreConsistentEverywhere) {
  for (const auto& topo : builtin_topologies()) {
    for (TileId t = 0; t < topo->tile_count(); ++t) {
      for (int p = 0; p < topo->local_port(); ++p) {
        const TileId n = topo->link_dst(t, p);
        if (n == kInvalidTile) {
          EXPECT_EQ(topo->reverse_port(t, p), -1) << topo->spec();
          continue;
        }
        const int back = topo->reverse_port(t, p);
        ASSERT_GE(back, 0) << topo->spec();
        EXPECT_EQ(topo->link_dst(n, back), t)
            << topo->spec() << " tile " << t << " port " << p;
        EXPECT_EQ(topo->reverse_port(n, back), p) << topo->spec();
      }
    }
  }
}

TEST(Topology, PortNamesRoundTrip) {
  for (const auto& topo : builtin_topologies()) {
    for (int p = 0; p < topo->ports(); ++p) {
      const std::string name = topo->port_name(p);
      EXPECT_EQ(topo->port_by_name(name), p)
          << topo->spec() << " port " << p << " name " << name;
    }
  }
  const auto m3 = Topology::mesh3d(4, 4, 2);
  EXPECT_EQ(m3->port_name(4), "U");
  EXPECT_EQ(m3->port_name(5), "D");
  EXPECT_EQ(m3->port_name(m3->local_port()), "L");
}

// ----------------------------------------------------- domain partitions

TEST(Topology, DomainPartitionsCoverEveryTileOnce) {
  for (const auto& topo : builtin_topologies()) {
    std::vector<int> seen(static_cast<std::size_t>(topo->tile_count()), 0);
    for (DomainId d = 0; d < topo->domain_count(); ++d) {
      int live = 0;
      for (const TileId t : topo->domain_tiles(d)) {
        if (t == kInvalidTile) continue;
        ++live;
        ASSERT_GE(t, 0) << topo->spec();
        ASSERT_LT(t, topo->tile_count()) << topo->spec();
        ++seen[static_cast<std::size_t>(t)];
        EXPECT_EQ(topo->domain_of(t), d) << topo->spec();
      }
      EXPECT_EQ(topo->domain_capacity(d), live) << topo->spec();
      EXPECT_GE(live, 1) << topo->spec();
      EXPECT_LE(live, 4) << topo->spec();
    }
    for (const int count : seen) EXPECT_EQ(count, 1) << topo->spec();
  }
}

// ------------------------------------------------- (a) mesh == XY routing

TEST(RoutingTableProperty, MeshTableMatchesXyHopCounts) {
  const auto topo = Topology::mesh(10, 6);
  const MeshGeometry mesh(10, 6);
  const RoutingTable table = RoutingTable::build(*topo);
  for (TileId a = 0; a < topo->tile_count(); ++a) {
    for (TileId b = 0; b < topo->tile_count(); ++b) {
      if (a == b) continue;
      ASSERT_TRUE(table.reachable(a, b));
      EXPECT_EQ(table.table_hops(a, b),
                manhattan_distance(mesh.coord(a), mesh.coord(b)))
          << a << " -> " << b;
      // Dimension order: X first. While x differs the next hop is E/W.
      const int port = table.next_port(a, b);
      if (mesh.coord(a).x != mesh.coord(b).x) {
        EXPECT_TRUE(port == 0 || port == 1) << a << " -> " << b;
      } else {
        EXPECT_TRUE(port == 2 || port == 3) << a << " -> " << b;
      }
    }
  }
}

// --------------------------------------------- (b) all-pairs reachability

TEST(RoutingTableProperty, AllPairsReachableOnEveryBuiltinTopology) {
  for (const auto& topo : builtin_topologies()) {
    const RoutingTable table = RoutingTable::build(*topo);
    for (TileId a = 0; a < topo->tile_count(); ++a) {
      for (TileId b = 0; b < topo->tile_count(); ++b) {
        ASSERT_TRUE(table.reachable(a, b))
            << topo->spec() << " " << a << " -> " << b;
        if (a == b) continue;
        const std::int32_t hops = table.table_hops(a, b);
        ASSERT_GT(hops, 0) << topo->spec();
        // Table routes are at least shortest-path long; up*/down*
        // detours are bounded by the tile count.
        EXPECT_GE(hops, topo->hop_distance(a, b)) << topo->spec();
        EXPECT_LT(hops, topo->tile_count()) << topo->spec();
      }
    }
  }
}

// ------------------------------------------------- (c) CDG acyclicity

TEST(RoutingTableProperty, VerifyPassesOnEveryBuiltinTopology) {
  for (const auto& topo : builtin_topologies()) {
    const RoutingTable table = RoutingTable::build(*topo);
    EXPECT_NO_THROW(table.verify(*topo)) << topo->spec();
  }
}

TEST(RoutingTableProperty, AllSingleLinkFailureMeshSubgraphsStaySafe) {
  // The 10x6 mesh has 104 undirected links (54 horizontal + 50
  // vertical). Killing any one of them (both directions) must still
  // yield a verified deadlock-free table that reaches every pair —
  // this generalizes the legacy exhaustive 104-link drain check to the
  // table generator the fault layer now uses.
  const auto topo = Topology::mesh(10, 6);
  const std::size_t lanes =
      static_cast<std::size_t>(topo->tile_count()) *
      static_cast<std::size_t>(topo->ports());
  int links = 0;
  for (TileId t = 0; t < topo->tile_count(); ++t) {
    for (int p = 0; p < topo->local_port(); ++p) {
      const TileId n = topo->link_dst(t, p);
      if (n == kInvalidTile || n < t) continue;  // count each link once
      ++links;
      std::vector<std::uint8_t> dead(lanes, 0);
      dead[static_cast<std::size_t>(t) *
               static_cast<std::size_t>(topo->ports()) +
           static_cast<std::size_t>(p)] = 1;
      dead[static_cast<std::size_t>(n) *
               static_cast<std::size_t>(topo->ports()) +
           static_cast<std::size_t>(topo->reverse_port(t, p))] = 1;
      const RoutingTable degraded =
          RoutingTable::build_degraded(*topo, dead, {});
      EXPECT_NO_THROW(degraded.verify(*topo)) << t << " port " << p;
      for (TileId a = 0; a < topo->tile_count(); ++a) {
        for (TileId b = 0; b < topo->tile_count(); ++b) {
          ASSERT_TRUE(degraded.reachable(a, b))
              << "link " << t << "<->" << n << ": " << a << " -> " << b;
        }
      }
    }
  }
  EXPECT_EQ(links, 104);
}

TEST(RoutingTableProperty, DeadRouterSubgraphStaysSafe) {
  const auto topo = Topology::mesh(10, 6);
  std::vector<std::uint8_t> router_dead(
      static_cast<std::size_t>(topo->tile_count()), 0);
  router_dead[33] = 1;
  const RoutingTable degraded =
      RoutingTable::build_degraded(*topo, {}, router_dead);
  EXPECT_NO_THROW(degraded.verify(*topo));
  for (TileId a = 0; a < topo->tile_count(); ++a) {
    for (TileId b = 0; b < topo->tile_count(); ++b) {
      if (a == 33 || b == 33) continue;
      ASSERT_TRUE(degraded.reachable(a, b)) << a << " -> " << b;
    }
  }
}

// -------------------------------------------------------- spec parsing

TEST(Topology, SpecParsingAndErrors) {
  EXPECT_EQ(Topology::make("mesh", 10, 6)->spec(), "mesh:10x6");
  EXPECT_EQ(Topology::make("torus:6x4", 10, 6)->kind(),
            TopologyKind::kTorus);
  EXPECT_EQ(Topology::make("mesh3d:4x4x2", 10, 6)->tile_count(), 32);
  EXPECT_THROW(Topology::make("klein-bottle", 10, 6), CheckError);
  EXPECT_THROW(Topology::make("mesh:0x6", 10, 6), CheckError);
  EXPECT_THROW(Topology::make("mesh:5x6", 10, 6), CheckError);  // odd
  EXPECT_THROW(Topology::make("file:/nonexistent/x.topo", 10, 6),
               CheckError);
}

// --------------------------------------- DirectionSet overflow regression

TEST(DirectionSetRegression, OverflowThrowsInsteadOfCorrupting) {
  DirectionSet set;
  set.push_back(Direction::East);
  set.push_back(Direction::West);
  set.push_back(Direction::North);
  set.push_back(Direction::South);
  EXPECT_EQ(set.size(), 4u);
  // The pre-fix implementation wrote out of bounds here.
  EXPECT_THROW(set.push_back(Direction::East), CheckError);
  EXPECT_EQ(set.size(), 4u);
  EXPECT_EQ(set[3], Direction::South);
}

}  // namespace
}  // namespace parm::noc
