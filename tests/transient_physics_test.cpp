// Deeper physics validation of the transient solver against closed-form
// circuit theory: RC discharge constants, LC resonance frequency, RLC
// damping regimes, and superposition in the domain netlist.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "pdn/pdn_netlist.hpp"
#include "pdn/transient.hpp"
#include "power/technology.hpp"

namespace parm::pdn {
namespace {

TEST(TransientPhysics, RcTimeConstantFromStepResponse) {
  // Current step into an RC node: v(t) = V0 − I·R·(1 − e^{−t/RC}).
  // Measure the time to reach 63.2 % of the final drop and compare to RC.
  const double R = 1.0, C = 1e-6, V0 = 1.0, I = 0.1;
  Circuit ckt;
  const NodeId s = ckt.add_node("s");
  const NodeId n = ckt.add_node("n");
  ckt.add_voltage_source(s, kGround, V0);
  ckt.add_resistor(s, n, R);
  ckt.add_capacitor(n, kGround, C);
  // A "ripple" with a period far longer than the run behaves as a step
  // from the DC operating point (which uses the average, I·(1±m)/2...):
  // instead, emulate the step by starting from DC with a tiny current
  // and swinging to a large one: i(t) alternates I·(1−m) → I·(1+m).
  const double m = 0.9;
  const double period = 1.0;  // effectively infinite vs the run
  ckt.add_current_source(n, kGround,
                         CurrentWaveform::ripple(I, m, 1.0 / period, 0.0,
                                                 1e-8 / period));
  // At t=0+ the source rises from the DC average I to I·(1+m):
  // additional drop ΔV = I·m·R with time constant RC.
  TransientSolver solver(ckt, 1e-8);
  const auto trace = solver.run(6e-6, {n});
  const auto& v = trace.of(n);
  const double v_start = V0 - I * R;          // DC point
  const double v_final = V0 - I * (1 + m) * R;
  const double v_tau = v_start - 0.632 * (v_start - v_final);
  // Find the crossing time.
  double t_cross = -1.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] <= v_tau) {
      t_cross = trace.times[i];
      break;
    }
  }
  ASSERT_GT(t_cross, 0.0);
  EXPECT_NEAR(t_cross, R * C, 0.10 * R * C);
}

TEST(TransientPhysics, LcRingingFrequencyMatchesFormula) {
  // Series L into C with a small damping R: the step response rings at
  // f ≈ 1/(2π√(LC)). Count zero crossings of (v − v_final).
  const double L = 1e-9, C = 1e-9, R = 0.05, V0 = 1.0;
  Circuit ckt;
  const NodeId s = ckt.add_node("s");
  const NodeId m1 = ckt.add_node("m1");
  const NodeId n = ckt.add_node("n");
  ckt.add_voltage_source(s, kGround, V0);
  ckt.add_resistor(s, m1, R);
  ckt.add_inductor(m1, n, L);
  ckt.add_capacitor(n, kGround, C);
  // Kick the tank with a current step (slow square ripple).
  ckt.add_current_source(
      n, kGround, CurrentWaveform::ripple(0.2, 0.9, 1e4, 0.0, 1e-4));

  const double f0 = 1.0 / (2.0 * std::numbers::pi * std::sqrt(L * C));
  const double t_end = 6.0 / f0;
  TransientSolver solver(ckt, 1.0 / f0 / 200.0);
  const auto trace = solver.run(t_end, {n});
  const auto& v = trace.of(n);

  // Mean of the late tail approximates the settled value.
  double v_final = 0.0;
  const std::size_t tail = v.size() * 3 / 4;
  for (std::size_t i = tail; i < v.size(); ++i) v_final += v[i];
  v_final /= static_cast<double>(v.size() - tail);

  int crossings = 0;
  for (std::size_t i = 1; i < tail; ++i) {
    if ((v[i - 1] - v_final) * (v[i] - v_final) < 0.0) ++crossings;
  }
  // Over the first 3/4 of 6 periods we expect ~2 crossings per period.
  const double measured_f =
      crossings / 2.0 / (trace.times[tail] - trace.times[0]);
  EXPECT_NEAR(measured_f, f0, 0.15 * f0);
}

TEST(TransientPhysics, HeavyDampingKillsRinging) {
  // Same tank with R far above critical damping: no oscillation, the
  // node must approach its final value monotonically (within solver
  // noise) after the kick.
  const double L = 1e-9, C = 1e-9;
  const double r_crit = 2.0 * std::sqrt(L / C);  // 2 ohms
  Circuit ckt;
  const NodeId s = ckt.add_node("s");
  const NodeId m1 = ckt.add_node("m1");
  const NodeId n = ckt.add_node("n");
  ckt.add_voltage_source(s, kGround, 1.0);
  ckt.add_resistor(s, m1, 5.0 * r_crit);
  ckt.add_inductor(m1, n, L);
  ckt.add_capacitor(n, kGround, C);
  ckt.add_current_source(
      n, kGround, CurrentWaveform::ripple(0.05, 0.9, 1e4, 0.0, 1e-4));
  const double f0 = 1.0 / (2.0 * std::numbers::pi * std::sqrt(L * C));
  TransientSolver solver(ckt, 1.0 / f0 / 200.0);
  const auto trace = solver.run(4.0 / f0, {n});
  const auto& v = trace.of(n);
  double v_final = v.back();
  int crossings = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if ((v[i - 1] - v_final) * (v[i] - v_final) < -1e-12) ++crossings;
  }
  EXPECT_LE(crossings, 2);  // essentially no ringing
}

TEST(TransientPhysics, DomainNetlistRespectsSuperposition) {
  // The PDN is linear: the deviation caused by two sources together must
  // equal the sum of the deviations caused by each alone (same phases).
  const auto& tech = power::technology_node(7);
  const double vdd = 0.4;
  auto run_case = [&](bool a_on, bool b_on) {
    std::array<TileLoad, 4> loads{};
    if (a_on) loads[0] = {0.25, 0.6, 0.0};
    if (b_on) loads[3] = {0.15, 0.4, 0.0};
    DomainCircuit dom = build_domain_circuit(tech, vdd, loads);
    const double period = 1.0 / tech.ripple_freq_hz;
    TransientSolver solver(dom.circuit, period / 96);
    return solver.run(4 * period, {dom.tile_nodes[1]}, 2 * period);
  };
  const auto both = run_case(true, true);
  const auto only_a = run_case(true, false);
  const auto only_b = run_case(false, true);
  const auto& vb = both.of(both.nodes[0]);
  const auto& va = only_a.of(only_a.nodes[0]);
  const auto& vv = only_b.of(only_b.nodes[0]);
  ASSERT_EQ(vb.size(), va.size());
  ASSERT_EQ(vb.size(), vv.size());
  for (std::size_t i = 0; i < vb.size(); i += 7) {
    const double dev_both = vdd - vb[i];
    const double dev_sum = (vdd - va[i]) + (vdd - vv[i]);
    EXPECT_NEAR(dev_both, dev_sum, 1e-6);
  }
}

}  // namespace
}  // namespace parm::pdn
