// Tests for workload-schedule serialization (parm-workload v1) and its
// replay guarantee.
#include <gtest/gtest.h>

#include <algorithm>

#include "appmodel/workload_io.hpp"
#include "common/check.hpp"

namespace parm::appmodel {
namespace {

std::vector<AppArrival> sample_sequence() {
  SequenceConfig cfg;
  cfg.kind = SequenceKind::Mixed;
  cfg.app_count = 8;
  cfg.inter_arrival_s = 0.07;
  cfg.seed = 99;
  return make_sequence(cfg);
}

TEST(WorkloadIo, RoundTripPreservesSchedule) {
  const auto original = sample_sequence();
  const auto restored = workload_from_text(workload_to_text(original));
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i].id, original[i].id);
    EXPECT_EQ(restored[i].bench->name, original[i].bench->name);
    EXPECT_EQ(restored[i].profile_seed, original[i].profile_seed);
    EXPECT_DOUBLE_EQ(restored[i].arrival_s, original[i].arrival_s);
    EXPECT_DOUBLE_EQ(restored[i].deadline_s, original[i].deadline_s);
  }
}

TEST(WorkloadIo, ProfilesRebuildIdentically) {
  const auto original = sample_sequence();
  const auto restored = workload_from_text(workload_to_text(original));
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_NE(restored[i].profile, nullptr);
    for (int dop : original[i].profile->dops()) {
      const auto& a = original[i].profile->variant(dop);
      const auto& b = restored[i].profile->variant(dop);
      EXPECT_DOUBLE_EQ(a.critical_path_cycles, b.critical_path_cycles);
      for (std::size_t t = 0; t < a.tasks.size(); ++t) {
        EXPECT_DOUBLE_EQ(a.tasks[t].work_cycles, b.tasks[t].work_cycles);
      }
    }
  }
}

TEST(WorkloadIo, FormatIsStable) {
  const auto seq = sample_sequence();
  const std::string text = workload_to_text(seq);
  EXPECT_EQ(text.rfind("parm-workload v1\n", 0), 0u);
  EXPECT_EQ(text.substr(text.size() - 4), "end\n");
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            seq.size() + 2);
}

TEST(WorkloadIo, RejectsMalformedInput) {
  EXPECT_THROW(workload_from_text(""), CheckError);
  EXPECT_THROW(workload_from_text("wrong\nend\n"), CheckError);
  EXPECT_THROW(
      workload_from_text("parm-workload v1\napp 0 nosuchapp 1 0 1\nend\n"),
      CheckError);
  // Missing end.
  EXPECT_THROW(
      workload_from_text("parm-workload v1\napp 0 fft 1 0 1\n"),
      CheckError);
  // Deadline before arrival.
  EXPECT_THROW(
      workload_from_text("parm-workload v1\napp 0 fft 1 2.0 1.0\nend\n"),
      CheckError);
  // Unsorted arrivals.
  EXPECT_THROW(workload_from_text("parm-workload v1\n"
                                  "app 0 fft 1 1.0 2.0\n"
                                  "app 1 fft 2 0.5 2.0\nend\n"),
               CheckError);
}

TEST(WorkloadIo, EmptyScheduleRoundTrips) {
  const auto restored = workload_from_text("parm-workload v1\nend\n");
  EXPECT_TRUE(restored.empty());
}

}  // namespace
}  // namespace parm::appmodel
