#!/usr/bin/env python3
"""Structured post-run check for the CI campaign-smoke job.

Validates the Monte Carlo campaign's verdict JSON (examples/parm_campaign
--json) instead of grepping its text report, so the assertions survive
formatting changes and the failure output names the offending value:

  * the report must parse and carry the full schema: campaign header,
    per-property verdicts with Wilson AND Clopper-Pearson intervals, and
    the run-level aggregates block;
  * every interval must be a well-ordered sub-range of [0, 1] that
    contains the observed failure rate;
  * the no_deadlock property must have ZERO observed failures — its
    acceptance criterion is "P(deadlock | fault scenario) upper bound is
    exactly the zero-failure bound", so a single deadlocked run fails
    the campaign (and this check);
  * recorder_dropped_events must be 0: every run's black-box event log
    was complete;
  * with --expect-runs N, the campaign must actually have run N seeds;
  * with --require-identical OTHER, a repeat report must be
    byte-identical (the determinism contract of the campaign driver).

Usage:
  check_campaign_smoke.py report.json [--expect-runs N]
                          [--require-identical report2.json]

Exits nonzero with a one-line reason per violated check.
"""

import argparse
import json
import sys


def fail(msg):
    raise SystemExit(f"FAIL: {msg}")


def check_interval(iv, rate, where):
    for key in ("lower", "upper"):
        if key not in iv:
            fail(f"{where} interval is missing '{key}': {iv}")
    lo, hi = iv["lower"], iv["upper"]
    if not (0.0 <= lo <= hi <= 1.0):
        fail(f"{where} interval [{lo}, {hi}] is not an ordered "
             "sub-range of [0, 1]")
    if not (lo - 1e-12 <= rate <= hi + 1e-12):
        fail(f"{where} interval [{lo}, {hi}] does not contain the "
             f"observed rate {rate}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="campaign verdict JSON to check")
    ap.add_argument("--expect-runs", type=int, default=None,
                    help="assert the campaign ran exactly this many seeds")
    ap.add_argument("--require-identical", default=None,
                    help="second report that must be byte-identical")
    args = ap.parse_args()

    with open(args.report, encoding="utf-8") as fh:
        raw = fh.read()
    try:
        report = json.loads(raw)
    except json.JSONDecodeError as err:
        fail(f"verdict JSON does not parse: {err}")

    for key in ("campaign", "properties", "aggregates"):
        if key not in report:
            fail(f"verdict JSON is missing the '{key}' block")
    header = report["campaign"]
    props = report["properties"]
    agg = report["aggregates"]

    if args.expect_runs is not None and header.get("runs") != args.expect_runs:
        fail(f"campaign ran {header.get('runs')} seeds, expected "
             f"{args.expect_runs}")
    if len(props) < 3:
        fail(f"expected >= 3 properties in the verdict, got {len(props)}")

    by_name = {}
    for p in props:
        for key in ("name", "runs", "failures", "failure_rate", "wilson",
                    "clopper_pearson", "pass"):
            if key not in p:
                fail(f"property {p.get('name', '<unnamed>')!r} is missing "
                     f"'{key}'")
        check_interval(p["wilson"], p["failure_rate"],
                       f"{p['name']} wilson")
        check_interval(p["clopper_pearson"], p["failure_rate"],
                       f"{p['name']} clopper_pearson")
        if p["failures"] > p["runs"]:
            fail(f"{p['name']}: {p['failures']} failures out of "
                 f"{p['runs']} runs")
        by_name[p["name"]] = p

    if "no_deadlock" not in by_name:
        fail("verdict has no 'no_deadlock' property")
    nd = by_name["no_deadlock"]
    if nd["failures"] != 0:
        fail(f"P(deadlock | fault scenario) bound is not zero: "
             f"{nd['failures']} of {nd['runs']} runs deadlocked "
             f"(wilson upper {nd['wilson']['upper']})")
    if not nd["pass"]:
        fail("no_deadlock property did not pass")
    if agg.get("deadlock_windows", 1) != 0:
        fail(f"aggregates report {agg.get('deadlock_windows')} deadlock "
             "windows")

    dropped = agg.get("recorder_dropped_events")
    if dropped is None:
        fail("aggregates block is missing 'recorder_dropped_events'")
    if dropped != 0:
        fail(f"{dropped} black-box events were dropped across the "
             "campaign — run reports are built on incomplete logs")

    if args.require_identical:
        with open(args.require_identical, encoding="utf-8") as fh:
            other = fh.read()
        if raw != other:
            fail(f"repeat campaign report {args.require_identical} is not "
                 "byte-identical — the determinism contract is broken")

    runs = header.get("runs")
    verdict = "PASS" if report["campaign"].get("all_pass") else "FAIL"
    print(f"OK: {runs} runs, {len(props)} properties "
          f"(no_deadlock 0/{nd['runs']} failures), 0 recorder drops, "
          f"campaign verdict {verdict}"
          + (", repeat byte-identical" if args.require_identical else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
