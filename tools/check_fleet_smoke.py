#!/usr/bin/env python3
"""Structured post-run check for the CI fleet-smoke job.

Parses the fleet runner's Prometheus exposition into a metric map
instead of grepping raw lines, so the assertions survive formatting
changes (metric ordering, float rendering, added labels) and the
failure output names the offending value:

  * the flight recorder must have emitted events and dropped none —
    a nonzero ``recorder.events_dropped`` means the smoke run's event
    log is incomplete and any downstream post-mortem is built on a
    truncated record;
  * when the run captured time series (``--require-timeseries``), the
    store must have absorbed samples;
  * when a health report is given, no subsystem may sit at CRIT.

Usage:
  check_fleet_smoke.py fleet_metrics.prom [--health fleet_health.txt]
                       [--require-timeseries]

Exits nonzero with a one-line reason per violated check.
"""

import argparse
import sys


def parse_prometheus(path):
    """Return {metric_name: value} for unlabelled samples; labelled
    samples (histogram buckets) are keyed as name{labels}."""
    metrics = {}
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            # <name>[{labels}] <value> — the exposition this repo writes
            # never emits timestamps.
            parts = line.rsplit(" ", 1)
            if len(parts) != 2:
                raise SystemExit(f"unparseable exposition line: {line!r}")
            name, value = parts
            try:
                metrics[name] = float(value)
            except ValueError as err:
                raise SystemExit(
                    f"non-numeric value on line {line!r}: {err}") from err
    return metrics


def require(metrics, name):
    if name not in metrics:
        raise SystemExit(f"FAIL: metric {name} missing from exposition "
                         f"({len(metrics)} metrics parsed)")
    return metrics[name]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("prom", help="Prometheus exposition file to check")
    ap.add_argument("--health", help="fleet health report to scan for CRIT")
    ap.add_argument("--require-timeseries", action="store_true",
                    help="also assert the time-series store saw samples")
    args = ap.parse_args()

    metrics = parse_prometheus(args.prom)

    # Build identity: every exposition must carry the parm_build_info
    # gauge (value 1, version/compiler/build-type in the labels) so a
    # scrape is attributable to the binary that produced it.
    build_info = [k for k in metrics if k.startswith("parm_build_info")]
    if not build_info:
        raise SystemExit("FAIL: parm_build_info gauge missing from "
                         f"exposition ({len(metrics)} metrics parsed)")
    for key in build_info:
        if metrics[key] != 1:
            raise SystemExit(f"FAIL: {key} = {metrics[key]} (identity "
                             "gauges must have value 1)")

    emitted = require(metrics, "parm_recorder_events_emitted_total")
    dropped = require(metrics, "parm_recorder_events_dropped_total")
    if emitted <= 0:
        raise SystemExit(f"FAIL: recorder emitted no events ({emitted})")
    if dropped > 0:
        raise SystemExit(
            f"FAIL: recorder dropped {dropped:.0f} of {emitted:.0f} events "
            "— the smoke run's event log is incomplete (raise the ring "
            "capacity or lower the event rate)")

    if args.require_timeseries:
        samples = require(metrics, "parm_timeseries_samples_total")
        if samples <= 0:
            raise SystemExit(
                f"FAIL: time-series capture was on but absorbed no samples "
                f"({samples})")

    if args.health:
        with open(args.health, encoding="utf-8") as fh:
            crit = [l.rstrip() for l in fh if "CRIT" in l]
        if crit:
            raise SystemExit("FAIL: health report contains CRIT lines:\n"
                             + "\n".join(crit))

    print(f"OK: {emitted:.0f} events emitted, 0 dropped"
          + (f", {metrics['parm_timeseries_samples_total']:.0f} time-series "
             "samples" if args.require_timeseries else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
