#!/usr/bin/env python3
"""Mid-run scrape check for the live observability surface.

Points at a runner started with --serve and hits every endpoint while
the simulation is still in flight, asserting the whole surface is
healthy — this is the CI proof that the embedded HTTP server works
under active scraping, not just after the run:

  * every endpoint answers 200 (``/healthz`` answering 503 means the
    run itself went critical — that is a smoke failure too);
  * ``/metrics`` parses as Prometheus text exposition, carries the
    ``parm_build_info`` identity gauge, and reports zero flight-recorder
    drops;
  * ``/slo`` parses as JSON with all four burn-rate objectives;
  * ``/profilez`` parses as JSON and shows all six engine phases with
    nonzero sample counts (the tool first waits for the engine to
    complete at least one epoch);
  * ``/varz`` parses as JSON with build identity;
  * every ``/eventz`` line parses as JSON and ``?limit=`` is honored;
  * ``/seriesz`` parses as JSON.

Usage:
  check_live_obs.py PORT [--timeout SECONDS]

Exits nonzero with a one-line reason per violated check.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

EXPECTED_PHASES = ("admission", "noc", "psn", "emergency", "migration",
                   "telemetry")
EXPECTED_OBJECTIVES = ("ve_rate", "deadline_miss_rate", "delivery_ratio",
                       "time_to_admit_p99")


def fetch(port, path, timeout=10):
    """Return (status, body-as-text). HTTP error statuses are returned,
    not raised; transport errors exit."""
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode("utf-8", errors="replace")
    except OSError as err:
        raise SystemExit(f"FAIL: cannot reach {url}: {err}") from err


def parse_prometheus(text):
    """{metric_name_or_name{labels}: value} — same grammar as
    tools/check_fleet_smoke.py, from a string."""
    metrics = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.rsplit(" ", 1)
        if len(parts) != 2:
            raise SystemExit(f"FAIL: unparseable exposition line: {line!r}")
        name, value = parts
        try:
            metrics[name] = float(value)
        except ValueError as err:
            raise SystemExit(
                f"FAIL: non-numeric exposition value {line!r}: {err}"
            ) from err
    return metrics


def expect_json(path, body):
    try:
        return json.loads(body)
    except ValueError as err:
        raise SystemExit(f"FAIL: {path} is not valid JSON: {err}\n"
                         f"body head: {body[:200]!r}") from err


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("port", type=int, help="--serve port of a live runner")
    ap.add_argument("--timeout", type=float, default=30.0,
                    help="seconds to wait for the engine's first epoch")
    args = ap.parse_args()
    port = args.port

    # Wait for the engine to complete epochs so every endpoint has data
    # behind it (the server comes up before run() starts).
    deadline = time.monotonic() + args.timeout
    profile = None
    while time.monotonic() < deadline:
        status, body = fetch(port, "/profilez")
        if status != 200:
            raise SystemExit(f"FAIL: /profilez -> HTTP {status}")
        profile = expect_json("/profilez", body)
        if profile.get("epochs", 0) > 0:
            break
        time.sleep(0.1)
    else:
        raise SystemExit(
            f"FAIL: no completed epochs within {args.timeout}s — "
            "is the runner actually running?")

    # /profilez: all six engine phases, every one with samples.
    phases = {p.get("phase"): p for p in profile.get("phases", [])}
    missing = [n for n in EXPECTED_PHASES if n not in phases]
    if missing:
        raise SystemExit(f"FAIL: /profilez missing phases {missing} "
                         f"(got {sorted(phases)})")
    empty = [n for n in EXPECTED_PHASES if phases[n].get("count", 0) <= 0]
    if empty:
        raise SystemExit(f"FAIL: /profilez phases with zero samples after "
                         f"{profile['epochs']} epochs: {empty}")

    # /metrics: parseable exposition, build identity, no recorder drops.
    status, body = fetch(port, "/metrics")
    if status != 200:
        raise SystemExit(f"FAIL: /metrics -> HTTP {status}")
    metrics = parse_prometheus(body)
    build_info = [k for k in metrics if k.startswith("parm_build_info")]
    if not build_info:
        raise SystemExit("FAIL: parm_build_info gauge missing from /metrics")
    if any(metrics[k] != 1 for k in build_info):
        raise SystemExit("FAIL: parm_build_info must have value 1")
    dropped = metrics.get("parm_recorder_events_dropped_total", 0.0)
    if dropped > 0:
        raise SystemExit(f"FAIL: flight recorder dropped {dropped:.0f} "
                         "events mid-run")

    # /healthz: 200 means OK/WARN; 503 means the run went critical.
    status, body = fetch(port, "/healthz")
    if status != 200:
        raise SystemExit(f"FAIL: /healthz -> HTTP {status}\n{body}")

    # /slo: all four objectives present.
    status, body = fetch(port, "/slo")
    if status != 200:
        raise SystemExit(f"FAIL: /slo -> HTTP {status}")
    slo = expect_json("/slo", body)
    names = {o.get("name") for o in slo.get("objectives", [])}
    missing = [n for n in EXPECTED_OBJECTIVES if n not in names]
    if missing:
        raise SystemExit(f"FAIL: /slo missing objectives {missing} "
                         f"(got {sorted(names)})")

    # /varz: JSON with build identity.
    status, body = fetch(port, "/varz")
    if status != 200:
        raise SystemExit(f"FAIL: /varz -> HTTP {status}")
    varz = expect_json("/varz", body)
    if "version" not in varz.get("build", {}):
        raise SystemExit(f"FAIL: /varz lacks build.version: {body[:200]!r}")

    # /eventz: JSONL, limit honored.
    status, body = fetch(port, "/eventz?limit=5")
    if status != 200:
        raise SystemExit(f"FAIL: /eventz -> HTTP {status}")
    lines = [l for l in body.splitlines() if l.strip()]
    if len(lines) > 5:
        raise SystemExit(f"FAIL: /eventz?limit=5 returned {len(lines)} lines")
    for line in lines:
        expect_json("/eventz", line)

    # /seriesz: the series listing parses.
    status, body = fetch(port, "/seriesz")
    if status != 200:
        raise SystemExit(f"FAIL: /seriesz -> HTTP {status}")
    listing = expect_json("/seriesz", body)
    if "series" not in listing:
        raise SystemExit(f"FAIL: /seriesz listing lacks 'series': "
                         f"{body[:200]!r}")

    print(f"OK: live scrape at epoch {profile['epochs']} — "
          f"{len(metrics)} exposition samples, all six phases profiled, "
          f"{len(names)} SLO objectives, {len(lines)} tail events, "
          f"{len(listing['series'])} series")
    return 0


if __name__ == "__main__":
    sys.exit(main())
